// Command benchjson turns `go test -bench -benchmem` output into a stable
// JSON artifact and gates allocation regressions against a committed
// baseline.
//
// Modes:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem . | benchjson -out BENCH_latest.json
//	go test -run '^$' -bench . -benchmem . | benchjson -record benchmarks/results
//	benchjson -check BENCH_baseline.json BENCH_latest.json -max-allocs-regress 0.20
//	benchjson -min-speedup 'Benchmark/batched,Benchmark/scalar,1.4' BENCH_latest.json
//	benchjson -max-bytes 'Benchmark/batched,400000' BENCH_latest.json
//
// The check compares allocs/op only: nanoseconds vary with the host, but
// the hot loops are engineered to allocate a fixed, machine-independent
// number of times per cell, so any growth beyond the tolerance is a real
// regression (a buffer that stopped being reused, a new per-step
// allocation). ns/op and B/op are recorded in the artifact for trend
// diffing across CI runs but never gated.
//
// -max-bytes gates B/op of one benchmark against an absolute ceiling.
// Like allocs/op — and unlike ns/op — bytes allocated per operation is a
// property of the code path, not the host: the hot loops allocate fixed-
// size buffers a fixed number of times, so a ceiling with headroom only
// trips when per-op memory genuinely grew (a pool that stopped pooling, a
// slice that started escaping).
//
// -min-speedup gates a ratio of two benchmarks measured in the SAME run,
// which IS host-independent: both numerator and denominator ran on the
// same machine under the same load, so their throughput ratio survives
// CI-runner variance that absolute ns/op gates cannot. The two entries
// are compared on the devices_per_sec custom metric when both report it,
// falling back to the inverse ns/op ratio otherwise.
//
// -record archives the parsed run under a timestamped filename together
// with host provenance (OS, arch, CPU model, core count, Go version), so
// a directory of records is a perf trajectory that can be diffed across
// machines and commits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/hostinfo"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values, keyed by a JSON-safe
	// form of the unit ("devices/sec" -> "devices_per_sec").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Host records where a benchmark run was measured (shared with every
// other artifact producer via internal/hostinfo). Absolute numbers are
// only comparable within one Host; ratios travel.
type Host = hostinfo.Host

// File is the artifact schema.
type File struct {
	RecordedAt string  `json:"recorded_at,omitempty"`
	Host       *Host   `json:"host,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		out        = fs.String("out", "", "write the parsed JSON artifact to this file (default stdout)")
		record     = fs.String("record", "", "write the artifact to DIR/<utc-timestamp>.json with host provenance")
		check      = fs.Bool("check", false, "compare two artifacts: benchjson -check baseline.json latest.json")
		maxRegress = fs.Float64("max-allocs-regress", 0.20, "with -check: maximum tolerated fractional allocs/op growth")
		minSpeedup = fs.String("min-speedup", "", "gate 'NUM,DEN,RATIO': in the given artifact, benchmark NUM must be at least RATIO times faster than DEN")
		maxBytes   = fs.String("max-bytes", "", "gate 'NAME,CEILING': in the given artifact, benchmark NAME's B/op must not exceed CEILING")
		only       = fs.String("only", "", "comma-separated benchmark-name substrings to keep (empty = all)")
	)
	if err := cli.ParseFlags(fs, os.Args[1:]); err != nil {
		cli.Exit("benchjson", err, "")
	}

	if *check {
		if fs.NArg() != 2 {
			fatal(fmt.Errorf("-check needs exactly two files: baseline.json latest.json"))
		}
		if err := runCheck(fs.Arg(0), fs.Arg(1), *maxRegress); err != nil {
			fatal(err)
		}
		return
	}
	if *minSpeedup != "" {
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("-min-speedup needs exactly one artifact file"))
		}
		if err := runSpeedup(fs.Arg(0), *minSpeedup); err != nil {
			fatal(err)
		}
		return
	}
	if *maxBytes != "" {
		if fs.NArg() != 1 {
			fatal(fmt.Errorf("-max-bytes needs exactly one artifact file"))
		}
		if err := runMaxBytes(fs.Arg(0), *maxBytes); err != nil {
			fatal(err)
		}
		return
	}

	f, err := parse(os.Stdin, splitList(*only))
	if err != nil {
		fatal(err)
	}
	if len(f.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin (pipe `go test -bench -benchmem` output)"))
	}
	if *record != "" {
		path, err := writeRecord(*record, f)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks recorded to %s\n", len(f.Benchmarks), path)
		return
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(f.Benchmarks), *out)
}

// parse reads `go test -bench` text: lines of the form
//
//	BenchmarkName-8   	      10	  123456 ns/op	  4096 B/op	  12 allocs/op
//
// Extra value/unit pairs emitted by b.ReportMetric (e.g. "1434
// devices/sec") land in Entry.Metrics.
func parse(r io.Reader, only []string) (*File, error) {
	var f File
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		// Strip only the -GOMAXPROCS suffix (e.g. "-8"); a TrimRight over
		// digits would also eat digits that belong to the benchmark name
		// (BenchmarkCRC32 must not collide with BenchmarkCRC).
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if !keep(name, only) {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: name, Iterations: iters}
		if e.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
			continue
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[metricKey(fields[i+1])] = v
			}
		}
		f.Benchmarks = append(f.Benchmarks, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return &f, nil
}

// metricKey makes a benchmark unit JSON-friendly: "devices/sec" becomes
// "devices_per_sec".
func metricKey(unit string) string {
	unit = strings.ReplaceAll(unit, "/", "_per_")
	var b strings.Builder
	for _, r := range unit {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func keep(name string, only []string) bool {
	if len(only) == 0 {
		return true
	}
	for _, o := range only {
		if strings.Contains(name, o) {
			return true
		}
	}
	return false
}

// runCheck fails (exit 1) when any benchmark present in BOTH files grew its
// allocs/op by more than maxRegress. Benchmarks only in one file are
// reported but never fail the gate (renames should not break CI). The full
// per-benchmark delta table is printed whether or not the gate passes, so
// a green CI run still leaves a readable perf trail in its log.
func runCheck(basePath, latestPath string, maxRegress float64) error {
	base, err := load(basePath)
	if err != nil {
		return err
	}
	latest, err := load(latestPath)
	if err != nil {
		return err
	}
	baseBy := map[string]Entry{}
	for _, e := range base.Benchmarks {
		baseBy[e.Name] = e
	}
	bad := 0
	for _, e := range latest.Benchmarks {
		b, ok := baseBy[e.Name]
		if !ok {
			fmt.Printf("benchjson: %-36s NEW       allocs/op=%.0f (no baseline)\n", e.Name, e.AllocsPerOp)
			continue
		}
		delete(baseBy, e.Name)
		limit := b.AllocsPerOp * (1 + maxRegress)
		status := "ok"
		if e.AllocsPerOp > limit {
			status = "REGRESSED"
			bad++
		} else if e.AllocsPerOp < b.AllocsPerOp {
			status = "improved"
		}
		fmt.Printf("benchjson: %-36s %-9s allocs/op %.0f -> %.0f (limit %.0f)  ns/op %.0f -> %.0f (info only)\n",
			e.Name, status, b.AllocsPerOp, e.AllocsPerOp, limit, b.NsPerOp, e.NsPerOp)
	}
	for name := range baseBy {
		fmt.Printf("benchjson: %-36s MISSING from latest run\n", name)
	}
	if bad > 0 {
		return fmt.Errorf("%d benchmark(s) regressed allocs/op beyond %.0f%%; if intentional, regenerate the baseline with `make bench-baseline` and explain why in the commit", bad, maxRegress*100)
	}
	return nil
}

// runSpeedup enforces a same-run throughput ratio. spec is
// "NUM,DEN,RATIO" (benchmark names cannot contain commas): benchmark NUM
// must be at least RATIO times faster than benchmark DEN in the single
// given artifact. Both entries came from one `go test -bench` invocation
// on one machine, so the ratio is immune to host speed differences.
func runSpeedup(path, spec string) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("-min-speedup wants 'NUM,DEN,RATIO', got %q", spec)
	}
	numName, denName := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	want, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || want <= 0 {
		return fmt.Errorf("-min-speedup ratio %q is not a positive number", parts[2])
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	byName := map[string]Entry{}
	for _, e := range f.Benchmarks {
		byName[e.Name] = e
	}
	num, ok := byName[numName]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not in artifact", path, numName)
	}
	den, ok := byName[denName]
	if !ok {
		return fmt.Errorf("%s: benchmark %q not in artifact", path, denName)
	}

	ratio, basis := 0.0, "devices_per_sec"
	if nd, dd := num.Metrics["devices_per_sec"], den.Metrics["devices_per_sec"]; nd > 0 && dd > 0 {
		ratio = nd / dd
	} else if num.NsPerOp > 0 && den.NsPerOp > 0 {
		// Fallback for benchmarks without the custom metric: time per op.
		ratio, basis = den.NsPerOp/num.NsPerOp, "ns_per_op"
	} else {
		return fmt.Errorf("%s: no comparable metric between %q and %q", path, numName, denName)
	}
	fmt.Printf("benchjson: speedup %s vs %s = %.2fx (%s basis, floor %.2fx)\n",
		numName, denName, ratio, basis, want)
	if ratio < want {
		return fmt.Errorf("speedup %.2fx is below the %.2fx floor: %s got slower relative to %s; investigate before merging (if the workload changed intentionally, adjust the floor in the Makefile with justification)",
			ratio, want, numName, denName)
	}
	return nil
}

// runMaxBytes enforces an absolute B/op ceiling on one benchmark. spec is
// "NAME,CEILING". Bytes per op, like allocs per op, is machine-independent
// for the engineered hot loops, so an absolute ceiling travels across CI
// runners the way a ns/op gate cannot.
func runMaxBytes(path, spec string) error {
	name, limitStr, ok := strings.Cut(spec, ",")
	if !ok {
		return fmt.Errorf("-max-bytes wants 'NAME,CEILING', got %q", spec)
	}
	name = strings.TrimSpace(name)
	limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
	if err != nil || limit <= 0 {
		return fmt.Errorf("-max-bytes ceiling %q is not a positive number", limitStr)
	}
	f, err := load(path)
	if err != nil {
		return err
	}
	for _, e := range f.Benchmarks {
		if e.Name != name {
			continue
		}
		fmt.Printf("benchjson: %s B/op %.0f (ceiling %.0f)\n", name, e.BytesPerOp, limit)
		if e.BytesPerOp > limit {
			return fmt.Errorf("%s allocates %.0f B/op, above the %.0f ceiling: per-op memory grew; find the allocation before merging (if intentional, raise the ceiling in the Makefile with justification)",
				name, e.BytesPerOp, limit)
		}
		return nil
	}
	return fmt.Errorf("%s: benchmark %q not in artifact", path, name)
}

// writeRecord archives the artifact under dir with a sortable UTC
// timestamp filename and host provenance attached.
func writeRecord(dir string, f *File) (string, error) {
	now := time.Now().UTC()
	f.RecordedAt = now.Format(time.RFC3339)
	f.Host = hostinfo.Collect()
	return hostinfo.WriteTimestamped(dir, "", now, f)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

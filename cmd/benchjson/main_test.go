package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkSimCell-8     	       1	   4334007 ns/op	   41672 B/op	      59 allocs/op
BenchmarkSimCellDTPM-8 	       1	   1540076 ns/op	  131512 B/op	      52 allocs/op
BenchmarkCRC32-8       	       1	    100000 ns/op
BenchmarkFleetThroughput/scalar-8    	       3	  44629704 ns/op	      1434 devices/sec	 2858965 B/op	    5095 allocs/op
BenchmarkFleetThroughput/batched-8   	       3	  26790385 ns/op	      2389 devices/sec	 2901124 B/op	    6551 allocs/op
PASS
`

func TestParse(t *testing.T) {
	f, err := parse(strings.NewReader(benchOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(f.Benchmarks))
	}
	// Sorted by name; the -8 GOMAXPROCS suffix is stripped without eating
	// digits that belong to the benchmark name.
	if f.Benchmarks[0].Name != "BenchmarkCRC32" {
		t.Errorf("first benchmark %q", f.Benchmarks[0].Name)
	}
	var cell Entry
	for _, e := range f.Benchmarks {
		if e.Name == "BenchmarkSimCell" {
			cell = e
		}
	}
	if cell.AllocsPerOp != 59 || cell.BytesPerOp != 41672 || cell.NsPerOp != 4334007 {
		t.Errorf("SimCell entry: %+v", cell)
	}
}

// TestParseCustomMetrics pins the b.ReportMetric handling: extra
// value/unit pairs land in Metrics under a JSON-safe key, and B/op /
// allocs/op still parse when a custom pair precedes them on the line.
func TestParseCustomMetrics(t *testing.T) {
	f, err := parse(strings.NewReader(benchOutput), []string{"FleetThroughput"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	for _, e := range f.Benchmarks {
		if e.Metrics["devices_per_sec"] == 0 {
			t.Errorf("%s: devices_per_sec missing from %v", e.Name, e.Metrics)
		}
		if e.AllocsPerOp == 0 || e.BytesPerOp == 0 {
			t.Errorf("%s: B/op / allocs/op lost after the custom pair: %+v", e.Name, e)
		}
	}
}

func TestMetricKey(t *testing.T) {
	for unit, want := range map[string]string{
		"devices/sec": "devices_per_sec",
		"MB/s":        "MB_per_s",
		"cells sec":   "cells_sec",
	} {
		if got := metricKey(unit); got != want {
			t.Errorf("metricKey(%q) = %q, want %q", unit, got, want)
		}
	}
}

func TestParseOnlyFilter(t *testing.T) {
	f, err := parse(strings.NewReader(benchOutput), []string{"DTPM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkSimCellDTPM" {
		t.Fatalf("filtered: %+v", f.Benchmarks)
	}
}

func writeArtifact(t *testing.T, name string, entries []Entry) string {
	t.Helper()
	data, err := json.Marshal(File{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCheck pins the allocation-regression gate: growth beyond the
// tolerance fails, growth within it (and improvements, renames, and new
// benchmarks) passes.
func TestRunCheck(t *testing.T) {
	base := writeArtifact(t, "base.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 50},
		{Name: "BenchmarkGone", AllocsPerOp: 10},
	})
	okLatest := writeArtifact(t, "ok.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 55}, // +10% < 20%
		{Name: "BenchmarkNew", AllocsPerOp: 99},     // no baseline: reported, never gated
	})
	if err := runCheck(base, okLatest, 0.20); err != nil {
		t.Fatalf("within-tolerance growth failed the gate: %v", err)
	}
	badLatest := writeArtifact(t, "bad.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 61}, // +22% > 20%
	})
	if err := runCheck(base, badLatest, 0.20); err == nil {
		t.Fatal("regression beyond tolerance passed the gate")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of a missing artifact succeeded")
	}
}

// TestRunSpeedup pins the same-run ratio gate: devices_per_sec is the
// preferred basis, ns/op the fallback, and a ratio below the floor fails.
func TestRunSpeedup(t *testing.T) {
	art := writeArtifact(t, "tp.json", []Entry{
		{Name: "Bench/scalar", NsPerOp: 44e6, Metrics: map[string]float64{"devices_per_sec": 1434}},
		{Name: "Bench/batched", NsPerOp: 27e6, Metrics: map[string]float64{"devices_per_sec": 2389}},
		{Name: "Bench/plain", NsPerOp: 88e6},
	})
	// 2389/1434 = 1.67x: clears a 1.4 floor, not a 2.0 floor.
	if err := runSpeedup(art, "Bench/batched,Bench/scalar,1.4"); err != nil {
		t.Fatalf("1.67x failed a 1.4x floor: %v", err)
	}
	if err := runSpeedup(art, "Bench/batched,Bench/scalar,2.0"); err == nil {
		t.Fatal("1.67x passed a 2.0x floor")
	}
	// ns/op fallback when either side lacks the metric: 88e6/44e6 = 2x.
	if err := runSpeedup(art, "Bench/scalar,Bench/plain,1.9"); err != nil {
		t.Fatalf("ns/op fallback failed: %v", err)
	}
	for _, bad := range []string{"one,two", "a,b,zero", "a,b,-1", "Bench/batched,Nope,1.1", "Nope,Bench/scalar,1.1"} {
		if err := runSpeedup(art, bad); err == nil {
			t.Errorf("spec %q did not fail", bad)
		}
	}
}

// TestRunMaxBytes pins the absolute B/op ceiling gate: at or under the
// ceiling passes, over it fails, and malformed specs or missing
// benchmarks are errors rather than silent passes.
func TestRunMaxBytes(t *testing.T) {
	art := writeArtifact(t, "bytes.json", []Entry{
		{Name: "Bench/batched", NsPerOp: 1, BytesPerOp: 239032},
		{Name: "Bench/scalar", NsPerOp: 1, BytesPerOp: 1.5e6},
	})
	if err := runMaxBytes(art, "Bench/batched,400000"); err != nil {
		t.Fatalf("239032 B/op failed a 400000 ceiling: %v", err)
	}
	if err := runMaxBytes(art, "Bench/batched, 239032"); err != nil {
		t.Fatalf("B/op exactly at the ceiling failed: %v", err)
	}
	if err := runMaxBytes(art, "Bench/scalar,400000"); err == nil {
		t.Fatal("1.5e6 B/op passed a 400000 ceiling")
	}
	for _, bad := range []string{"no-ceiling", "Bench/batched,zero", "Bench/batched,-5", "Nope,100"} {
		if err := runMaxBytes(art, bad); err == nil {
			t.Errorf("spec %q did not fail", bad)
		}
	}
}

// TestWriteRecord pins the archive mode: a sortable timestamped filename
// and host provenance on the artifact.
func TestWriteRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	f := &File{Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 1}}}
	path, err := writeRecord(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(path) != dir || !strings.HasSuffix(path, "Z.json") {
		t.Fatalf("record path %q not a timestamped file under %q", path, dir)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got File
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.RecordedAt == "" || got.Host == nil || got.Host.GOOS == "" || got.Host.NumCPU < 1 || got.Host.GoVersion == "" {
		t.Fatalf("record missing provenance: %+v", got)
	}
	if len(got.Benchmarks) != 1 || got.Benchmarks[0].Name != "BenchmarkX" {
		t.Fatalf("record lost benchmarks: %+v", got.Benchmarks)
	}
}

func TestSplitListAndKeep(t *testing.T) {
	got := splitList(" a, ,b,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitList: %v", got)
	}
	if keep("BenchmarkX", []string{"Y"}) || !keep("BenchmarkX", nil) || !keep("BenchmarkXY", []string{"XY"}) {
		t.Fatal("keep filter misbehaves")
	}
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkSimCell-8     	       1	   4334007 ns/op	   41672 B/op	      59 allocs/op
BenchmarkSimCellDTPM-8 	       1	   1540076 ns/op	  131512 B/op	      52 allocs/op
BenchmarkCRC32-8       	       1	    100000 ns/op
PASS
`

func TestParse(t *testing.T) {
	f, err := parse(strings.NewReader(benchOutput), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(f.Benchmarks))
	}
	// Sorted by name; the -8 GOMAXPROCS suffix is stripped without eating
	// digits that belong to the benchmark name.
	if f.Benchmarks[0].Name != "BenchmarkCRC32" {
		t.Errorf("first benchmark %q", f.Benchmarks[0].Name)
	}
	var cell Entry
	for _, e := range f.Benchmarks {
		if e.Name == "BenchmarkSimCell" {
			cell = e
		}
	}
	if cell.AllocsPerOp != 59 || cell.BytesPerOp != 41672 || cell.NsPerOp != 4334007 {
		t.Errorf("SimCell entry: %+v", cell)
	}
}

func TestParseOnlyFilter(t *testing.T) {
	f, err := parse(strings.NewReader(benchOutput), []string{"DTPM"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 1 || f.Benchmarks[0].Name != "BenchmarkSimCellDTPM" {
		t.Fatalf("filtered: %+v", f.Benchmarks)
	}
}

func writeArtifact(t *testing.T, name string, entries []Entry) string {
	t.Helper()
	data, err := json.Marshal(File{Benchmarks: entries})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunCheck pins the allocation-regression gate: growth beyond the
// tolerance fails, growth within it (and improvements, renames, and new
// benchmarks) passes.
func TestRunCheck(t *testing.T) {
	base := writeArtifact(t, "base.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 50},
		{Name: "BenchmarkGone", AllocsPerOp: 10},
	})
	okLatest := writeArtifact(t, "ok.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 55}, // +10% < 20%
		{Name: "BenchmarkNew", AllocsPerOp: 99},     // no baseline: reported, never gated
	})
	if err := runCheck(base, okLatest, 0.20); err != nil {
		t.Fatalf("within-tolerance growth failed the gate: %v", err)
	}
	badLatest := writeArtifact(t, "bad.json", []Entry{
		{Name: "BenchmarkSimCell", AllocsPerOp: 61}, // +22% > 20%
	})
	if err := runCheck(base, badLatest, 0.20); err == nil {
		t.Fatal("regression beyond tolerance passed the gate")
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("load of a missing artifact succeeded")
	}
}

func TestSplitListAndKeep(t *testing.T) {
	got := splitList(" a, ,b,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("splitList: %v", got)
	}
	if keep("BenchmarkX", []string{"Y"}) || !keep("BenchmarkX", nil) || !keep("BenchmarkXY", []string{"XY"}) {
		t.Fatal("keep filter misbehaves")
	}
}

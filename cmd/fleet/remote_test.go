package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
	"repro/internal/server"
)

// TestRunRemote drives the -addr thin-client path against an in-process
// daemon and checks the acceptance contract: the exported files are
// byte-identical to an in-process engine run of the same spec.
func TestRunRemote(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := fleet.Spec{
		Name:           "remote-test",
		N:              6,
		ControlPeriodS: 0.5,
		Scenarios: []fleet.Weight{
			{Name: "cold-start", Weight: 2},
			{Name: "bursty-interactive", Weight: 1},
		},
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "r.json")
	csvPath := filepath.Join(dir, "r.csv")
	if err := runRemote(context.Background(), ts.URL, "team-a", spec, 11, 2, jsonPath, csvPath, true); err != nil {
		t.Fatal(err)
	}

	eng := &fleet.Engine{BaseSeed: 11, Workers: 2}
	rep, err := eng.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantJSON, wantCSV bytes.Buffer
	if err := rep.WriteJSON(&wantJSON); err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteCSV(&wantCSV); err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct {
		path string
		want []byte
	}{{jsonPath, wantJSON.Bytes()}, {csvPath, wantCSV.Bytes()}} {
		got, err := os.ReadFile(f.path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, f.want) {
			t.Errorf("%s differs from in-process export (%d vs %d bytes)", f.path, len(got), len(f.want))
		}
	}
}

func TestRunRemoteRejectsBadDaemon(t *testing.T) {
	if err := runRemote(context.Background(), "127.0.0.1:1", "", fleet.Spec{N: 1}, 1, 0, "", "", true); err == nil {
		t.Error("unreachable daemon reported success")
	}
}

func TestHitRate(t *testing.T) {
	if got := hitRate(0, 0); got != 0 {
		t.Errorf("hitRate(0,0) = %v, want 0", got)
	}
	if got := hitRate(3, 1); got != 0.75 {
		t.Errorf("hitRate(3,1) = %v, want 0.75", got)
	}
}

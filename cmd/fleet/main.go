// Command fleet simulates a population of virtual devices — a platform and
// scenario mix with per-device ambient/workload/noise perturbations — and
// reports aggregate per-platform/per-scenario distributions: skin-
// temperature percentiles, throttle-time fraction, energy, and performance
// loss across the whole population.
//
// The population draw and every simulation stream derive from -seed and
// the device index alone, so reports are byte-identical at any -workers
// value and any single device can be re-run standalone with replay-cell.
//
// Usage:
//
//	fleet run -n 1000 [-spec fleet.json] [-workers 8] [-json out.json] [-csv out.csv]
//	fleet run -n 200 -platforms exynos5410=3,fanless-phone=1 -scenarios all -ambient-jitter 8
//	fleet report -in out.json
//	fleet replay-cell -i 42 -n 1000 [-spec fleet.json] [-o trace.csv]
//
// Interrupting a run (Ctrl-C) stops the remaining cells, exports the
// partial report over the completed devices, and exits 130.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/client"
	"repro/internal/controlapi"
	"repro/internal/fleet"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(ctx, os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	case "replay-cell":
		err = cmdReplayCell(ctx, os.Args[2:])
	case "-version", "--version":
		fmt.Println(version.Engine)
		return
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Exit("fleet", err, "platform and scenario names: `campaign -list`")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fleet run         -n N [-spec file.json] [flags] [-json out.json] [-csv out.csv]
  fleet report      -in report.json
  fleet replay-cell -i K -n N [-spec file.json] [-o trace.csv]

population flags (ignored when -spec is given):
  -n N                     population size
  -policy P                with-fan|without-fan|reactive|dtpm (default dtpm)
  -platforms name=w,...    platform mix with draw weights ("all" = every
                           registered platform equally; bare name = weight 1)
  -scenarios name=w,...    scenario mix (default: whole library equally)
  -ambient-jitter C        uniform per-device ambient shift in [-C, +C]
  -freeze-workload         all devices share one workload realization
  -tmax C  -period S       thermal constraint / control period overrides
run flags: -workers N  -seed N  -quiet  -json FILE  -csv FILE
  -addr HOST:PORT          submit to a reprod daemon instead of running
                           in-process (identical output bytes and exit codes;
                           caching then happens server-side)
  -tenant NAME             tenant queue for -addr submissions
  -cpuprofile FILE         write a CPU profile of the run (go tool pprof)
  -memprofile FILE         write a post-run heap profile
store flags (run, replay-cell):
  -store DIR               content-addressed result store (default .repro-store);
                           identical cells are served from it instead of re-simulated
  -no-cache                disable the store for this invocation`)
}

// specFlags declares the population flags shared by run and replay-cell
// and resolves them (or -spec) into a validated fleet spec.
type specFlags struct {
	fs             *flag.FlagSet
	specFile       *string
	n              *int
	policy         *string
	platforms      *string
	scenarios      *string
	ambientJitter  *float64
	freezeWorkload *bool
	tmax           *float64
	period         *float64
}

func newSpecFlags(fs *flag.FlagSet) *specFlags {
	return &specFlags{
		fs:             fs,
		specFile:       fs.String("spec", "", "JSON fleet spec file (overrides the population flags)"),
		n:              fs.Int("n", 0, "population size"),
		policy:         fs.String("policy", "", "thermal-management policy (default dtpm)"),
		platforms:      fs.String("platforms", "", `platform mix "name=w,..." or "all" (default: the default platform)`),
		scenarios:      fs.String("scenarios", "", `scenario mix "name=w,..." or "all" (default: whole library equally)`),
		ambientJitter:  fs.Float64("ambient-jitter", 0, "uniform per-device ambient shift half-width (C)"),
		freezeWorkload: fs.Bool("freeze-workload", false, "pin every device to its scenario's own workload realization"),
		tmax:           fs.Float64("tmax", 0, "thermal constraint override (C, 0 = paper's 63)"),
		period:         fs.Float64("period", 0, "control period override (s, 0 = paper's 100 ms)"),
	}
}

func (sf *specFlags) spec() (fleet.Spec, error) {
	if *sf.specFile != "" {
		data, err := os.ReadFile(*sf.specFile)
		if err != nil {
			return fleet.Spec{}, err
		}
		spec, err := fleet.ParseJSON(data)
		if err != nil {
			return fleet.Spec{}, err
		}
		if *sf.n != 0 {
			// -n composes with -spec so one spec file scales from a smoke
			// run to a full sweep.
			spec.N = *sf.n
			if err := spec.Validate(); err != nil {
				return fleet.Spec{}, err
			}
		}
		return spec, nil
	}
	return buildSpec(*sf.n, *sf.policy, *sf.platforms, *sf.scenarios, *sf.ambientJitter, *sf.freezeWorkload, *sf.tmax, *sf.period)
}

// buildSpec assembles and validates a fleet spec from the flag values.
func buildSpec(n int, policy, platforms, scenarios string, ambientJitter float64, freeze bool, tmax, period float64) (fleet.Spec, error) {
	spec := fleet.Spec{
		N:              n,
		Policy:         policy,
		TMaxC:          tmax,
		ControlPeriodS: period,
		AmbientJitterC: ambientJitter,
		FreezeWorkload: freeze,
	}
	var err error
	if spec.Platforms, err = parseMix(platforms, platform.Names()); err != nil {
		return spec, err
	}
	if spec.Scenarios, err = parseMix(scenarios, scenario.Names()); err != nil {
		return spec, err
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// parseMix parses a "name=weight,name,..." mix axis; "all" expands to every
// known name with equal weight, a bare name gets weight 1, and "" leaves
// the axis empty (the spec default applies).
func parseMix(s string, all []string) ([]fleet.Weight, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if s == "all" {
		out := make([]fleet.Weight, len(all))
		for i, name := range all {
			out[i] = fleet.Weight{Name: name, Weight: 1}
		}
		return out, nil
	}
	var out []fleet.Weight
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		w := fleet.Weight{Weight: 1}
		if name, weight, ok := strings.Cut(f, "="); ok {
			v, err := strconv.ParseFloat(weight, 64)
			if err != nil {
				return nil, fmt.Errorf("bad mix weight %q: %w", f, err)
			}
			w.Name, w.Weight = strings.TrimSpace(name), v
		} else {
			w.Name = f
		}
		out = append(out, w)
	}
	return out, nil
}

// storeFlags declares the result-store flags shared by run and replay-cell
// and opens (or disables) the store they select.
type storeFlags struct {
	dir     *string
	noCache *bool
}

func newStoreFlags(fs *flag.FlagSet) *storeFlags {
	return &storeFlags{
		dir:     fs.String("store", store.DefaultDir, "content-addressed result store directory"),
		noCache: fs.Bool("no-cache", false, "disable the result store (compute every cell)"),
	}
}

func (sf *storeFlags) open() (*store.Store, error) {
	if *sf.noCache {
		return nil, nil
	}
	return store.Open(*sf.dir)
}

func cmdRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet run", flag.ContinueOnError)
	sf := newSpecFlags(fs)
	stf := newStoreFlags(fs)
	var (
		workers    = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		baseSeed   = fs.Int64("seed", 1, "fleet base seed (population draw + every derived stream)")
		jsonOut    = fs.String("json", "", "write the aggregate report as JSON to this file")
		csvOut     = fs.String("csv", "", "write one CSV row per group to this file")
		quiet      = fs.Bool("quiet", false, "suppress per-device progress on stderr")
		addr       = fs.String("addr", "", "submit to a reprod daemon at this address instead of running in-process")
		tenant     = fs.String("tenant", "", "tenant name for daemon submissions (with -addr)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile covering the population run to this file")
		memProfile = fs.String("memprofile", "", "write a post-run heap profile (after GC) to this file")
	)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	spec, err := sf.spec()
	if err != nil {
		return err
	}
	if *addr != "" {
		if *cpuProfile != "" || *memProfile != "" {
			return fmt.Errorf("-cpuprofile/-memprofile profile the in-process engine; drop -addr")
		}
		return runRemote(ctx, *addr, *tenant, spec, *baseSeed, *workers, *jsonOut, *csvOut, *quiet)
	}
	st, err := stf.open()
	if err != nil {
		return err
	}
	prof, err := startProfile(*cpuProfile)
	if err != nil {
		return err
	}
	eng := &fleet.Engine{Workers: *workers, BaseSeed: *baseSeed, Store: st}
	if !*quiet {
		eng.OnCellDone = func(p fleet.Progress) {
			status := "ok"
			switch {
			case p.Err != "":
				status = "FAILED: " + p.Err
			case p.Cached:
				status = "cached"
			}
			fmt.Fprintf(os.Stderr, "fleet: [%d/%d] %s %s\n", p.Done, p.Total, p.Cell, status)
		}
	}
	fmt.Fprintf(os.Stderr, "fleet: simulating %d devices\n", spec.N)
	rep, err := eng.Run(ctx, spec)
	// Profiles are finalized before any exit path below: the CPU profile
	// covers exactly the population run (cancelled or not) and the heap
	// profile snaps what the run left retained.
	if perr := prof.finish(*memProfile); perr != nil {
		if err == nil {
			return perr
		}
		fmt.Fprintln(os.Stderr, "fleet:", perr)
	}
	if st != nil {
		s := st.Stats()
		fmt.Fprintf(os.Stderr, "fleet: store %s: %d hits, %d misses (%.0f%% hit rate)\n",
			st.Dir(), s.Hits, s.Misses, 100*s.HitRate())
	}
	cancelled := err != nil && cli.Cancelled(err)
	if err != nil && !cancelled {
		return err
	}
	if rep == nil {
		// Cancelled before any cell could run (e.g. Ctrl-C during the
		// anchor characterization): nothing partial to report.
		return err
	}
	fmt.Print(rep.Summary())
	if *jsonOut != "" {
		if werr := writeFile(*jsonOut, rep.WriteJSON); werr != nil {
			return werr
		}
	}
	if *csvOut != "" {
		if werr := writeFile(*csvOut, rep.WriteCSV); werr != nil {
			return werr
		}
	}
	if cancelled {
		fmt.Fprintln(os.Stderr, "fleet:", err)
		os.Exit(130)
	}
	if len(rep.Failures) > 0 {
		os.Exit(1)
	}
	return nil
}

// runRemote is the -addr thin-client path of `fleet run`: submit the spec
// to a reprod daemon, mirror the in-process progress/store/summary output
// from the event stream (the daemon pre-renders every line's fields, so
// the bytes match), fetch the byte-identical report exports, and exit with
// the in-process codes. Ctrl-C cancels the run server-side and then keeps
// following: the daemon finalizes it with a partial report, exactly like
// the in-process engine, and the client exits 130 after exporting it.
func runRemote(ctx context.Context, addr, tenant string, spec fleet.Spec, baseSeed int64, workers int, jsonOut, csvOut string, quiet bool) error {
	cl := client.New(addr)
	cl.Tenant = tenant
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fleet: simulating %d devices\n", spec.N)
	info, err := cl.SubmitFleet(ctx, controlapi.SubmitRequest{Spec: specJSON, Seed: baseSeed, Workers: workers})
	if err != nil {
		return err
	}
	// Follow on a background context: an interrupt must not sever the
	// stream — it cancels the run server-side, and the stream then delivers
	// the partial run's done event.
	go func() {
		<-ctx.Done()
		cl.Cancel(context.Background(), info.ID)
	}()
	done, err := cl.Follow(context.Background(), info.ID, 0, func(ev controlapi.Event) error {
		if quiet || ev.Type != controlapi.EventProgress {
			return nil
		}
		status := "ok"
		switch {
		case ev.Err != "":
			status = "FAILED: " + ev.Err
		case ev.Cached:
			status = "cached"
		}
		fmt.Fprintf(os.Stderr, "fleet: [%d/%d] %s %s\n", ev.Done, ev.Total, ev.Cell, status)
		return nil
	})
	if err != nil {
		return err
	}
	if done.StoreDir != "" {
		fmt.Fprintf(os.Stderr, "fleet: store %s: %d hits, %d misses (%.0f%% hit rate)\n",
			done.StoreDir, done.Hits, done.Misses, 100*hitRate(done.Hits, done.Misses))
	}
	if done.State == controlapi.StateFailed {
		return errors.New(done.RunErr)
	}
	// A run cancelled before any cell could start has no report — mirror
	// the in-process "cancelled during characterization" exit.
	if done.Summary == "" && done.State == controlapi.StateCancelled {
		fmt.Fprintln(os.Stderr, "fleet:", done.RunErr)
		os.Exit(130)
	}
	fmt.Print(done.Summary)
	if jsonOut != "" {
		if err := fetchReport(cl, info.ID, "json", jsonOut); err != nil {
			return err
		}
	}
	if csvOut != "" {
		if err := fetchReport(cl, info.ID, "csv", csvOut); err != nil {
			return err
		}
	}
	if done.State == controlapi.StateCancelled {
		fmt.Fprintln(os.Stderr, "fleet:", done.RunErr)
		os.Exit(130)
	}
	if done.Failures > 0 {
		os.Exit(1)
	}
	return nil
}

// hitRate mirrors store.Stats.HitRate for the daemon's per-run counters.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// fetchReport downloads one rendered export into a local file — the same
// bytes the in-process path writes, served from the daemon.
func fetchReport(cl *client.Client, id, format, path string) error {
	b, err := cl.Report(context.Background(), id, format)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("fleet report", flag.ContinueOnError)
	in := fs.String("in", "", "saved JSON report to render")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("fleet report: need -in report.json")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := fleet.ReadReportJSON(f)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())
	return nil
}

func cmdReplayCell(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fleet replay-cell", flag.ContinueOnError)
	sf := newSpecFlags(fs)
	stf := newStoreFlags(fs)
	var (
		index    = fs.Int("i", -1, "device index to replay")
		baseSeed = fs.Int64("seed", 1, "fleet base seed (must match the run)")
		out      = fs.String("o", "", "write the device's full trace CSV here (default stdout)")
	)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	spec, err := sf.spec()
	if err != nil {
		return err
	}
	if *index < 0 {
		return fmt.Errorf("fleet replay-cell: need -i INDEX (0..%d)", spec.N-1)
	}
	st, err := stf.open()
	if err != nil {
		return err
	}
	eng := &fleet.Engine{Workers: 1, BaseSeed: *baseSeed, Store: st}
	res, cfg, err := eng.ReplayCell(ctx, spec, *index)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, replaySummary(cfg, res))
	if *out != "" {
		return writeFile(*out, res.Rec.WriteCSV)
	}
	return res.Rec.WriteCSV(os.Stdout)
}

// replaySummary renders the one-line device summary. The trailing board
// temperature degrades to n/a when the trace has no board series (or no
// samples) — a trace shape must never panic the CLI.
func replaySummary(cfg fleet.CellConfig, res *sim.Result) string {
	board := "n/a"
	if res.Rec != nil {
		if s := res.Rec.Series("board"); s != nil && len(s.Vals) > 0 {
			board = fmt.Sprintf("%.1fC", s.Vals[len(s.Vals)-1])
		}
	}
	return fmt.Sprintf("fleet: device %s: exec=%.1fs energy=%.0fJ maxT=%.1fC board=%s",
		cfg, res.ExecTime, res.Energy, res.MaxTemp, board)
}

// profile manages optional pprof capture around a population run — the
// groundwork the soak harness needs to attribute fleet time and memory.
// A zero cpuPath/memPath disables the respective capture, so the flags are
// free when unused.
type profile struct {
	cpu *os.File
}

// startProfile begins CPU profiling into cpuPath ("" = disabled).
func startProfile(cpuPath string) (*profile, error) {
	p := &profile{}
	if cpuPath == "" {
		return p, nil
	}
	f, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	p.cpu = f
	return p, nil
}

// finish stops the CPU profile and, when memPath is set, writes a post-GC
// heap profile there — retained memory, not transient garbage, which is
// what the bounded-memory contract is about.
func (p *profile) finish(memPath string) error {
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return err
		}
		p.cpu = nil
	}
	if memPath == "" {
		return nil
	}
	f, err := os.Create(memPath)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

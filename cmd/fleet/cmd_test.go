package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fleet"
)

// TestCmdRunInProcess exercises the full `fleet run` command path — spec
// flags, store flags, export files — the way main dispatches it.
func TestCmdRunInProcess(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "r.json")
	csvPath := filepath.Join(dir, "r.csv")
	err := cmdRun(context.Background(), []string{
		"-n", "3", "-seed", "9", "-workers", "2",
		"-scenarios", "cold-start", "-period", "0.5",
		"-no-cache", "-quiet",
		"-json", jsonPath, "-csv", csvPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := fleet.ReadReportJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 3 {
		t.Errorf("report completed %d, want 3", rep.Completed)
	}
	if b, err := os.ReadFile(csvPath); err != nil || len(b) == 0 {
		t.Errorf("csv export: %d bytes, %v", len(b), err)
	}

	// And `fleet report` renders the saved report.
	if err := cmdReport([]string{"-in", jsonPath}); err != nil {
		t.Errorf("cmdReport: %v", err)
	}
	if err := cmdReport([]string{}); err == nil {
		t.Error("cmdReport without -in accepted")
	}
}

func TestCmdRunAddrConflicts(t *testing.T) {
	// Profiling flags profile the in-process engine; they cannot combine
	// with -addr.
	err := cmdRun(context.Background(), []string{
		"-n", "1", "-addr", "127.0.0.1:1", "-cpuprofile", "cpu.out",
	})
	if err == nil {
		t.Error("-addr with -cpuprofile accepted")
	}
}

func TestCmdRunBadSpec(t *testing.T) {
	if err := cmdRun(context.Background(), []string{"-n", "0"}); err == nil {
		t.Error("n=0 accepted")
	}
}

package main

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestParseMix(t *testing.T) {
	ws, err := parseMix("exynos5410=3, fanless-phone", platform.Names())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "exynos5410" || ws[0].Weight != 3 ||
		ws[1].Name != "fanless-phone" || ws[1].Weight != 1 {
		t.Fatalf("parseMix: %+v", ws)
	}
	if ws, err := parseMix("", nil); err != nil || ws != nil {
		t.Fatalf("empty mix: %v %v", ws, err)
	}
	all, err := parseMix("all", scenario.Names())
	if err != nil || len(all) != len(scenario.Names()) {
		t.Fatalf(`"all" mix: %v %v`, all, err)
	}
	if _, err := parseMix("x=heavy", nil); err == nil {
		t.Error("non-numeric weight accepted")
	}
}

func TestBuildSpec(t *testing.T) {
	spec, err := buildSpec(100, "reactive", "all", "cold-start=2,gaming-session", 5, true, 58, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 100 || spec.Policy != "reactive" || spec.TMaxC != 58 ||
		spec.ControlPeriodS != 0.5 || spec.AmbientJitterC != 5 || !spec.FreezeWorkload {
		t.Fatalf("spec scalars: %+v", spec)
	}
	if len(spec.Platforms) != len(platform.Names()) || len(spec.Scenarios) != 2 {
		t.Fatalf("spec mixes: %+v", spec)
	}
}

// TestReplaySummary pins the guard that used to be a nil-panic: traces
// without a board series (or with no samples, or no recorder at all)
// degrade the summary's board field to n/a instead of crashing.
func TestReplaySummary(t *testing.T) {
	cfg := fleet.CellConfig{Index: 0, Platform: "exynos5410", Scenario: "cold-start"}
	withBoard := trace.NewRecorder()
	withBoard.Record("board", 0, 41.25)
	emptyBoard := trace.NewRecorder()
	emptyBoard.Record("board", 0, 1)
	emptyBoard.Series("board").Times = nil
	emptyBoard.Series("board").Vals = nil
	noBoard := trace.NewRecorder()
	noBoard.Record("cpu", 0, 50)
	cases := []struct {
		name string
		rec  *trace.Recorder
		want string
	}{
		{"board series", withBoard, "board=41.2C"},
		{"empty board series", emptyBoard, "board=n/a"},
		{"no board series", noBoard, "board=n/a"},
		{"nil recorder", nil, "board=n/a"},
	}
	for _, c := range cases {
		res := &sim.Result{ExecTime: 12.5, Energy: 300, MaxTemp: 61.5, Rec: c.rec}
		got := replaySummary(cfg, res)
		if !strings.Contains(got, c.want) {
			t.Errorf("%s: summary %q, want it to contain %q", c.name, got, c.want)
		}
	}
}

// TestProfileCapture smoke-tests the -cpuprofile/-memprofile plumbing: a
// tiny fleet run between startProfile and finish must leave both profile
// files on disk, non-empty (pprof's proto output is never zero bytes).
func TestProfileCapture(t *testing.T) {
	dir := t.TempDir()
	cpuPath := dir + "/cpu.pprof"
	memPath := dir + "/mem.pprof"
	prof, err := startProfile(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := buildSpec(4, "without-fan", "", "cold-start", 0, false, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	eng := &fleet.Engine{Workers: 1, BaseSeed: 1}
	if _, err := eng.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if err := prof.finish(memPath); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpuPath, memPath} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestProfileDisabled pins that empty paths are a no-op: nothing written,
// no error — the default invocation must not pay for profiling.
func TestProfileDisabled(t *testing.T) {
	prof, err := startProfile("")
	if err != nil {
		t.Fatal(err)
	}
	if err := prof.finish(""); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSpecRejectsBadInput(t *testing.T) {
	cases := []struct {
		n                    int
		policy, plats, scens string
		jitter               float64
	}{
		{0, "", "", "", 0},               // no population
		{10, "warp-speed", "", "", 0},    // bad policy
		{10, "", "no-such-soc", "", 0},   // bad platform
		{10, "", "", "no-such", 0},       // bad scenario
		{10, "", "", "cold-start=-1", 0}, // negative weight
		{10, "", "", "", 9000},           // jitter out of range
		{10, "", "", "cold-start=0", 0},  // non-normalizable
	}
	for _, c := range cases {
		if _, err := buildSpec(c.n, c.policy, c.plats, c.scens, c.jitter, false, 0, 0); err == nil {
			t.Errorf("buildSpec(%+v) accepted", c)
		}
	}
}

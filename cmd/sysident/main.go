// Command sysident runs the Chapter 4 modeling methodology end to end on
// the simulated device — the temperature-furnace leakage characterization
// (§4.1.1) and the per-resource PRBS thermal system identification
// (§4.2.1) — and dumps the fitted models with their validation metrics.
//
// The characterization is context-aware: Ctrl-C aborts it between stages
// (furnace sweeps, PRBS experiments) with the conventional SIGINT exit
// code (130).
//
// Usage:
//
//	sysident            # full characterization with defaults
//	sysident -seed 7    # different sensor-noise realization
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/sysid"
)

func main() {
	fs := flag.NewFlagSet("sysident", flag.ContinueOnError)
	var (
		seed    = fs.Int64("seed", 1, "sensor-noise seed")
		horizon = fs.Int("horizon", 10, "validation horizon in 100 ms intervals")
	)
	if err := cli.ParseFlags(fs, os.Args[1:]); err != nil {
		cli.Exit("sysident", err, "")
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	runner := sim.NewRunner()
	rig := &sysid.Rig{
		Ctx:     ctx,
		GT:      runner.GT,
		Thermal: runner.Thermal,
		Sensors: sensor.NewBank(runner.Sensors, *seed),
		Ts:      0.1,
	}

	fmt.Println("== Leakage characterization (temperature furnace, 40-80 C) ==")
	fmt.Fprintln(os.Stderr, "sysident: [1/2] furnace sweeps + leakage fit...")
	leak, err := rig.CharacterizeLeakage()
	if err != nil {
		fatal(err)
	}
	fmt.Print(leakageReport(leak, runner.GT.Res[platform.Big].Leak))

	fmt.Println("\n== Thermal system identification (per-resource PRBS) ==")
	fmt.Fprintln(os.Stderr, "sysident: [2/2] per-resource PRBS identification...")
	model, datasets, err := rig.CharacterizeThermal()
	if err != nil {
		fatal(err)
	}
	fmt.Print(modelReport(model))

	fmt.Printf("\n== Validation at a %d-interval (%.1f s) horizon ==\n", *horizon, float64(*horizon)*0.1)
	fmt.Print(validationReport(model, datasets, *horizon))
}

// leakageReport renders the fitted leakage law next to the ground truth it
// was identified from — the Figure 4.3 comparison as text.
func leakageReport(leak, gt power.LeakageParams) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fitted law: I(T) = c1 T^2 exp(c2/T) + Igate\n")
	fmt.Fprintf(&b, "  c1 = %.4g  c2 = %.1f  Igate = %.4g A  (Vnom %.3f V)\n", leak.C1, leak.C2, leak.IGate, leak.VNom)
	fmt.Fprintln(&b, "  temp(C)   fitted(W)  ground-truth(W)")
	for _, temp := range []float64{40, 50, 60, 70, 80} {
		v := 1.25
		fmt.Fprintf(&b, "  %6.0f   %8.3f   %8.3f\n", temp, leak.Power(temp, v), gt.Power(temp, v))
	}
	return b.String()
}

// modelReport renders the identified state-space thermal model.
func modelReport(model *sysid.ThermalModel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "identified T[k+1] = A T[k] + B P[k]   (Ts = %.1f s, ambient %.1f C)\n", model.Ts, model.Ambient)
	fmt.Fprintln(&b, "A =")
	fmt.Fprint(&b, model.A)
	fmt.Fprintln(&b, "B =")
	fmt.Fprint(&b, model.B)
	fmt.Fprintf(&b, "stable: %v\n", model.Stable())
	return b.String()
}

// validationReport renders the per-dataset prediction-error lines of the
// §4.2.2 validation.
func validationReport(model *sysid.ThermalModel, datasets []*sysid.Dataset, horizon int) string {
	var b strings.Builder
	for i, ds := range datasets {
		meanPct, maxPct, maxAbs := sysid.ValidationError(model, ds, horizon)
		fmt.Fprintf(&b, "dataset %d (%s excitation): mean %.2f%%  max %.2f%%  maxAbs %.2f C\n",
			i, platform.Resource(i), meanPct, maxPct, maxAbs)
	}
	return b.String()
}

func fatal(err error) {
	cli.Exit("sysident", err, "")
}

package main

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/sysid"
)

// One real characterization shared by the report tests (it is the CLI's
// actual data path, and fast enough to run in a unit test).
var (
	rigOnce sync.Once
	rigLeak power.LeakageParams
	rigMod  *sysid.ThermalModel
	rigData []*sysid.Dataset
	rigErr  error
)

func characterize(t *testing.T) {
	t.Helper()
	rigOnce.Do(func() {
		runner := sim.NewRunner()
		rig := &sysid.Rig{
			Ctx:     context.Background(),
			GT:      runner.GT,
			Thermal: runner.Thermal,
			Sensors: sensor.NewBank(runner.Sensors, 1),
			Ts:      0.1,
		}
		rigLeak, rigErr = rig.CharacterizeLeakage()
		if rigErr != nil {
			return
		}
		rigMod, rigData, rigErr = rig.CharacterizeThermal()
	})
	if rigErr != nil {
		t.Fatalf("characterization: %v", rigErr)
	}
}

func TestLeakageReport(t *testing.T) {
	characterize(t)
	rep := leakageReport(rigLeak, sim.NewRunner().GT.Res[platform.Big].Leak)
	if !strings.Contains(rep, "fitted law") || !strings.Contains(rep, "ground-truth(W)") {
		t.Fatalf("report structure:\n%s", rep)
	}
	// One row per furnace setpoint of the table.
	rows := 0
	for _, line := range strings.Split(rep, "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && (f[0] == "40" || f[0] == "50" || f[0] == "60" || f[0] == "70" || f[0] == "80") {
			rows++
		}
	}
	if rows != 5 {
		t.Errorf("leakage table has %d setpoint rows, want 5:\n%s", rows, rep)
	}
}

func TestModelReport(t *testing.T) {
	characterize(t)
	rep := modelReport(rigMod)
	for _, want := range []string{"identified T[k+1]", "A =", "B =", "stable: true"} {
		if !strings.Contains(rep, want) {
			t.Errorf("model report missing %q:\n%s", want, rep)
		}
	}
}

func TestValidationReport(t *testing.T) {
	characterize(t)
	rep := validationReport(rigMod, rigData, 10)
	lines := strings.Split(strings.TrimRight(rep, "\n"), "\n")
	if len(lines) != len(rigData) {
		t.Fatalf("validation report has %d lines for %d datasets:\n%s", len(lines), len(rigData), rep)
	}
	for i, line := range lines {
		if !strings.Contains(line, "mean ") || !strings.Contains(line, "maxAbs ") {
			t.Errorf("dataset %d line malformed: %q", i, line)
		}
		// The identified model must actually predict: a broken pipeline
		// shows up as a wild mean error here.
		if strings.Contains(line, "mean NaN") || strings.Contains(line, "Inf") {
			t.Errorf("dataset %d: non-finite validation error: %q", i, line)
		}
	}
}

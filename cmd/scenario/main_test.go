package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/platform"
)

func TestLoadSpec(t *testing.T) {
	if _, err := loadSpec("", ""); err == nil {
		t.Error("no source accepted")
	}
	if _, err := loadSpec("gaming-session", "x.json"); err == nil {
		t.Error("both -s and -spec accepted")
	}
	spec, err := loadSpec("gaming-session", "")
	if err != nil || spec.Name != "gaming-session" {
		t.Errorf("library load: %v, %v", spec.Name, err)
	}
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := os.WriteFile(path, []byte(`{"name":"custom","phases":[{"duration_s":5,"benchmark":"sha"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err = loadSpec("", path)
	if err != nil || spec.Name != "custom" {
		t.Errorf("spec-file load: %v, %v", spec.Name, err)
	}
	if _, err := loadSpec("", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestRunFlagsNewRunner(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	rf := addRunFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	r, err := rf.newRunner()
	if err != nil || r.Desc.Name != platform.DefaultName {
		t.Fatalf("default runner: %+v, %v", r.Desc, err)
	}
	rf.platform = "tablet-8big"
	r, err = rf.newRunner()
	if err != nil || r.Desc.Name != "tablet-8big" {
		t.Fatalf("named runner: %+v, %v", r.Desc, err)
	}
	rf.platform = "no-such-soc"
	if _, err := rf.newRunner(); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestListSubcommands(t *testing.T) {
	// cmdList and cmdPlatforms walk the real registries; they must not
	// error (stdout noise is fine under go test).
	if err := cmdList(); err != nil {
		t.Errorf("cmdList: %v", err)
	}
	if err := cmdPlatforms(); err != nil {
		t.Errorf("cmdPlatforms: %v", err)
	}
}

func TestCmdDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	csvA := "time_s,maxtemp\n0,40\n0.1,41\n"
	csvB := "time_s,maxtemp\n0,40\n0.1,99\n"
	for path, data := range map[string]string{a: csvA, b: csvB} {
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := cmdDiff([]string{"-a", a, "-b", a}); err != nil {
		t.Errorf("identical traces diff: %v", err)
	}
	if err := cmdDiff([]string{"-a", a, "-b", b}); err == nil {
		t.Error("diverging traces reported clean")
	}
	if err := cmdDiff([]string{"-a", a}); err == nil {
		t.Error("missing -b accepted")
	}
}

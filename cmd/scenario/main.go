// Command scenario runs, records, replays, and diffs multi-phase usage
// scenarios on the simulated device.
//
// A scenario strings timed phases together the way a real device is used —
// app switches, idle gaps, ambient changes, governor swaps, thermal-soak
// preludes — and a recorded run captures both the simulator's outputs and
// the scripted inputs, so the trace itself can be re-fed as the workload
// demand source later. Replaying a trace with the parameters of the
// original run reproduces it sample for sample; any mismatch means the
// sim/thermal/dtpm stack changed behaviour, which is exactly what the
// golden-trace regression tests pin.
//
// Usage:
//
//	scenario list
//	scenario platforms
//	scenario run    -s gaming-session [-platform tablet-8big] [-policy with-fan] [-seed 1] [-chart]
//	scenario record -s gaming-session -o trace.csv
//	scenario replay -trace trace.csv [-o fresh.csv] [-tol 0]
//	scenario diff   -a a.csv -b b.csv [-tol 0]
//
// run and record accept -spec file.json in place of -s to execute a custom
// declarative scenario. replay exits non-zero when the diff is not clean.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// SIGINT/SIGTERM cancel the context; runs stop between control
	// intervals and the process exits with the conventional 130.
	ctx, stop := cli.SignalContext()
	defer stop()
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "platforms":
		err = cmdPlatforms()
	case "run":
		err = cmdRun(ctx, os.Args[2:], false)
	case "record":
		err = cmdRun(ctx, os.Args[2:], true)
	case "replay":
		err = cmdReplay(ctx, os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "-version", "--version":
		fmt.Println(version.Engine)
		return
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		cli.Exit("scenario", err, "run `scenario list` / `scenario platforms` for the known names")
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  scenario list
  scenario platforms
  scenario run    -s <name>|-spec <file.json> [flags]
  scenario record -s <name>|-spec <file.json> -o trace.csv [flags]
  scenario replay -trace trace.csv [-o fresh.csv] [-tol 0] [flags]
  scenario diff   -a a.csv -b b.csv [-tol 0]

common flags: -platform NAME (see `+"`scenario platforms`"+`)
              -policy with-fan|without-fan|reactive|dtpm  -seed N
              -tmax C  -governor NAME  -period S  -progress

Ctrl-C stops a run between control intervals (partial metrics are
reported; exit code 130).`)
}

// cmdPlatforms mirrors `scenario list` for the platform registry: one line
// per registered profile with its shape.
func cmdPlatforms() error {
	for _, name := range platform.Names() {
		d, err := platform.ByName(name)
		if err != nil {
			return err
		}
		little := "-"
		if d.Little != nil {
			little = fmt.Sprintf("%d", d.Little.Cores)
		}
		fan := "fan"
		if d.Fan == nil {
			fan = "fanless"
		}
		fmt.Printf("%-16s big=%d little=%-2s gpu=%d-steps %-8s %s\n",
			d.Name, d.Big.Cores, little, d.GPU.NumOPPs(), fan, d.Title)
	}
	return nil
}

func cmdList() error {
	for _, name := range scenario.Names() {
		s, err := scenario.ByName(name)
		if err != nil {
			return err
		}
		c, err := scenario.Compile(s)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %5.0fs  %d phases  %s\n", s.Name, c.Duration(), c.Phases(), s.Notes)
	}
	return nil
}

// runFlags are the simulation parameters shared by run/record/replay. They
// must match between a recording and its replay for the reproduction to be
// exact.
type runFlags struct {
	platform string
	policy   string
	seed     int64
	tmax     float64
	governor string
	period   float64
	progress bool

	progressDone func() // terminates the -progress line, set with the observer
}

func addRunFlags(fs *flag.FlagSet) *runFlags {
	rf := &runFlags{}
	fs.StringVar(&rf.platform, "platform", "", "platform profile (see `scenario platforms`; empty = "+platform.DefaultName+")")
	fs.StringVar(&rf.policy, "policy", "with-fan", "thermal-management policy (with-fan, without-fan, reactive, dtpm)")
	fs.Int64Var(&rf.seed, "seed", 1, "sensor-noise / background seed (dtpm: also the characterization seed)")
	fs.Float64Var(&rf.tmax, "tmax", 0, "thermal constraint in C (0 = paper's 63)")
	fs.StringVar(&rf.governor, "governor", "", "initial cpufreq governor (empty = ondemand)")
	fs.Float64Var(&rf.period, "period", 0, "control period in seconds (0 = paper's 0.1)")
	fs.BoolVar(&rf.progress, "progress", false, "stream live per-interval telemetry to stderr")
	return rf
}

// newRunner builds the simulated device for the -platform flag.
func (rf *runFlags) newRunner() (*sim.Runner, error) {
	if rf.platform == "" {
		return sim.NewRunner(), nil
	}
	d, err := platform.ByName(rf.platform)
	if err != nil {
		return nil, err
	}
	return sim.NewRunnerFor(d), nil
}

// options builds the sim.Options for a scripted run, characterizing the
// device first when the policy needs models.
func (rf *runFlags) options(ctx context.Context, runner *sim.Runner, script sim.Script, record bool) (sim.Options, error) {
	pol, err := sim.ParsePolicy(rf.policy)
	if err != nil {
		return sim.Options{}, err
	}
	opt := sim.Options{
		Policy:        pol,
		Script:        script,
		Seed:          rf.seed,
		TMax:          rf.tmax,
		Governor:      rf.governor,
		ControlPeriod: rf.period,
		Record:        record,
	}
	if rf.progress {
		opt.Observer, rf.progressDone = cli.Progress(os.Stderr, 50) // every 5 simulated seconds at 100 ms
	}
	if pol == sim.PolicyDTPM {
		fmt.Fprintln(os.Stderr, "scenario: characterizing device (furnace + PRBS system identification)...")
		models, err := runner.Characterize(ctx, rf.seed)
		if err != nil {
			return sim.Options{}, err
		}
		opt.Model = models.Thermal
		opt.PowerModel = models.Power
	}
	return opt, nil
}

// runScripted executes the options through the shared partial-result
// choreography: a cancelled run returns its partial result alongside the
// error, so the caller still reports metrics and writes the partial trace
// before the 130 exit.
func runScripted(ctx context.Context, rf *runFlags, runner *sim.Runner, opt sim.Options) (*sim.Result, error) {
	return cli.RunPartial(ctx, runner, opt, rf.progressDone)
}

func cmdRun(ctx context.Context, args []string, record bool) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	name := fs.String("s", "", "library scenario name (see `scenario list`)")
	specFile := fs.String("spec", "", "JSON scenario spec file (alternative to -s)")
	out := fs.String("o", "", "write the recorded trace CSV to this file")
	chart := fs.Bool("chart", false, "print ASCII charts of the main series")
	rf := addRunFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	spec, err := loadSpec(*name, *specFile)
	if err != nil {
		return err
	}
	script, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	if record && *out == "" {
		return fmt.Errorf("record needs -o <trace.csv>")
	}

	runner, err := rf.newRunner()
	if err != nil {
		return err
	}
	// Validate the scenario against the platform it will run on.
	if err := scenario.ValidateFor(spec, runner.Desc); err != nil {
		return err
	}
	opt, err := rf.options(ctx, runner, script, record || *chart || *out != "")
	if err != nil {
		return err
	}
	res, runErr := runScripted(ctx, rf, runner, opt)
	if res == nil {
		return runErr
	}
	printResult(res)
	if *chart && res.Rec != nil {
		for _, s := range []string{"maxtemp", "power_w", "freq_ghz"} {
			if series := res.Rec.Series(s); series != nil {
				fmt.Print(trace.AsciiChart(s, []*trace.Series{series}, 10, 72))
			}
		}
	}
	// Written even when the run was interrupted: the partial recording
	// over the completed intervals is exactly what -o asked for.
	if *out != "" && res.Rec != nil {
		if err := writeFile(*out, res.Rec.WriteCSV); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scenario: trace written to %s\n", *out)
	}
	return runErr // nil, or the cancellation carried out for the 130 exit
}

func cmdReplay(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "recorded trace CSV to replay (required)")
	out := fs.String("o", "", "write the fresh run's trace CSV to this file")
	tol := fs.Float64("tol", 0, "value tolerance for the diff (0 = exact)")
	rf := addRunFlags(fs)
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("replay needs -trace <trace.csv>")
	}
	rec, err := readTrace(*tracePath)
	if err != nil {
		return err
	}
	script, err := scenario.FromTrace(rec, "replay:"+*tracePath)
	if err != nil {
		return err
	}
	if rf.period == 0 {
		// Replay on the grid the trace was recorded at; an explicit
		// -period still wins (and will report every sample mismatched).
		rf.period = script.Period()
	}

	runner, err := rf.newRunner()
	if err != nil {
		return err
	}
	opt, err := rf.options(ctx, runner, script, true)
	if err != nil {
		return err
	}
	res, runErr := runScripted(ctx, rf, runner, opt)
	if res == nil {
		return runErr
	}
	printResult(res)
	if *out != "" && res.Rec != nil {
		if err := writeFile(*out, res.Rec.WriteCSV); err != nil {
			return err
		}
	}
	if runErr != nil {
		// An interrupted replay can never diff cleanly (the fresh trace
		// is a prefix); the partial -o trace is still written above.
		return runErr
	}
	d := trace.DiffRecorders(rec, res.Rec.Materialize(), *tol)
	fmt.Printf("replay diff vs %s: %s\n", *tracePath, d)
	if !d.Clean() {
		return fmt.Errorf("replay diverged from the recording (same -policy/-seed/-tmax/-governor/-period as the original?)")
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	a := fs.String("a", "", "first trace CSV")
	b := fs.String("b", "", "second trace CSV")
	tol := fs.Float64("tol", 0, "value tolerance (0 = exact)")
	if err := cli.ParseFlags(fs, args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return fmt.Errorf("diff needs -a and -b trace files")
	}
	ra, err := readTrace(*a)
	if err != nil {
		return err
	}
	rb, err := readTrace(*b)
	if err != nil {
		return err
	}
	d := trace.DiffRecorders(ra, rb, *tol)
	fmt.Println(d)
	if !d.Clean() {
		return fmt.Errorf("traces differ")
	}
	return nil
}

func loadSpec(name, specFile string) (scenario.Spec, error) {
	switch {
	case name != "" && specFile != "":
		return scenario.Spec{}, fmt.Errorf("use -s or -spec, not both")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return scenario.Spec{}, err
		}
		return scenario.ParseJSON(data)
	case name != "":
		return scenario.ByName(name)
	default:
		return scenario.Spec{}, fmt.Errorf("need -s <name> (see `scenario list`) or -spec <file.json>")
	}
}

func printResult(res *sim.Result) {
	fmt.Printf("%s under %s: %.1fs avg %.2fW / %.0fJ, maxT %.1fC avgT %.1fC, %.1fs over TMax\n",
		res.Bench, res.Policy, res.ExecTime, res.AvgPower, res.Energy,
		res.MaxTemp, res.AvgTemp, res.OverTMax)
}

func readTrace(path string) (*trace.Recorder, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rec, err := trace.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package repro

import (
	"bytes"
	"context"
	"testing"
)

// facadeFleetSpec is a tiny mixed fleet that still exercises grouping and
// perturbation through the public API.
func facadeFleetSpec() FleetSpec {
	return FleetSpec{
		N:              6,
		Policy:         "reactive", // no models needed: keeps facade tests fast
		ControlPeriodS: 0.5,
		Scenarios: []FleetWeight{
			{Name: "cold-start", Weight: 2},
			{Name: "bursty-interactive", Weight: 1},
		},
		AmbientJitterC: 6,
	}
}

// TestStreamFleetMatchesRunFleet: the streaming form yields one progress
// event per device and collects exactly the batch report, byte for byte.
func TestStreamFleetMatchesRunFleet(t *testing.T) {
	dev := NewDevice()
	spec := facadeFleetSpec()
	batch, err := dev.RunFleet(context.Background(), spec, nil, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, collect, err := dev.StreamFleet(context.Background(), spec, nil, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for p := range seq {
		events++
		if p.Err != "" {
			t.Errorf("device %d failed: %s", p.Cell.Index, p.Err)
		}
		if p.Metrics == nil && p.Err == "" {
			t.Errorf("device %d: no metrics", p.Cell.Index)
		}
	}
	if events != spec.N {
		t.Errorf("streamed %d events for %d devices", events, spec.N)
	}
	streamed, err := collect()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := batch.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := streamed.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("streamed report differs from batch report:\n%s\nvs\n%s", b.Bytes(), a.Bytes())
	}
}

// TestStreamFleetWithoutConsuming: calling the collector without touching
// the stream detaches it — the batch mode — and must not deadlock.
func TestStreamFleetWithoutConsuming(t *testing.T) {
	dev := NewDevice()
	_, collect, err := dev.StreamFleet(context.Background(), facadeFleetSpec(), nil, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := collect()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Cells {
		t.Errorf("completed %d of %d", rep.Completed, rep.Cells)
	}
}

// TestStreamFleetBreakCancels: breaking out of the stream cancels the
// remaining population and the collector reports the partial fleet.
func TestStreamFleetBreakCancels(t *testing.T) {
	dev := NewDevice()
	seq, collect, err := dev.StreamFleet(context.Background(), facadeFleetSpec(), nil, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	for range seq {
		break
	}
	rep, err := collect()
	if err == nil {
		t.Fatal("broken stream reported no cancellation")
	}
	if rep == nil || rep.Completed == 0 || rep.Completed == rep.Cells {
		t.Fatalf("partial fleet: %+v", rep)
	}
}

// TestStreamFleetRejectsBadSpec: validation fails synchronously, before
// any goroutine is spawned.
func TestStreamFleetRejectsBadSpec(t *testing.T) {
	dev := NewDevice()
	if _, _, err := dev.StreamFleet(context.Background(), FleetSpec{N: 0}, nil, 1, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestReplayFleetCellFacade: the replayed device records a full trace and
// matches its derived configuration.
func TestReplayFleetCellFacade(t *testing.T) {
	dev := NewDevice()
	spec := facadeFleetSpec()
	res, cfg, err := dev.ReplayFleetCell(context.Background(), spec, nil, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rec == nil {
		t.Fatal("no trace recorded")
	}
	if want := DeriveFleetCell(spec, 9, 2); cfg != want {
		t.Errorf("replayed config %+v, derived %+v", cfg, want)
	}
	if res.Bench != cfg.Scenario {
		t.Errorf("replay ran %q, cell declares scenario %q", res.Bench, cfg.Scenario)
	}
}

// TestParseFleetSpecFacade: the facade parser is the same strict decoder
// the engine and daemon use.
func TestParseFleetSpecFacade(t *testing.T) {
	spec, err := ParseFleetSpec([]byte(`{"n":2,"control_period_s":0.5,"scenarios":[{"name":"cold-start","weight":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.N != 2 {
		t.Errorf("parsed n=%d", spec.N)
	}
	if _, err := ParseFleetSpec([]byte(`{"n":2,"warp":9}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestFleetOptionsFacade: WithBatchSize and WithStore tune execution
// without changing report bytes, and a warm re-run is served from the store.
func TestFleetOptionsFacade(t *testing.T) {
	dev := NewDevice()
	spec := facadeFleetSpec()
	plain, err := dev.RunFleet(context.Background(), spec, nil, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	tuned, err := dev.RunFleet(context.Background(), spec, nil, 2, 9,
		WithBatchSize(2), WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tuned.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("options changed report bytes")
	}
	// Warm re-run against the same store: byte-identical again.
	warm, err := dev.RunFleet(context.Background(), spec, nil, 2, 9, WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := warm.WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("warm store run changed report bytes")
	}
}

package repro

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// sampleSeries maps every recorded output series to the Sample field that
// feeds it — the bit-identity contract between the stream and the trace.
var sampleSeries = map[string]func(Sample) float64{
	"maxtemp":    func(s Sample) float64 { return s.MaxTemp },
	"freq_ghz":   func(s Sample) float64 { return s.FreqGHz },
	"power_w":    func(s Sample) float64 { return s.Power },
	"fan":        func(s Sample) float64 { return s.FanSpeed },
	"cores":      func(s Sample) float64 { return s.Cores },
	"cluster":    func(s Sample) float64 { return s.Cluster },
	"gpu_mhz":    func(s Sample) float64 { return s.GPUMHz },
	"board":      func(s Sample) float64 { return s.BoardTemp },
	"bigpower_w": func(s Sample) float64 { return s.BigPower },
}

// TestStreamMatchesRecordedTrace pins the stream/batch equivalence
// contract: samples observed live during a recorded scenario run are
// bit-identical to the rows of Result.Rec, and the streamed session ends
// in the same Result the deprecated batch wrapper produces.
func TestStreamMatchesRecordedTrace(t *testing.T) {
	dev := NewDevice()
	spec := NewSpec(
		WithScenario("cold-start"),
		WithPolicy(WithFan),
		WithSeed(11),
		WithRecord(true),
	)
	session, err := dev.Start(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Sample
	for s := range session.Samples() {
		streamed = append(streamed, s)
	}
	res, err := session.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) == 0 || res.Rec == nil {
		t.Fatalf("streamed %d samples, rec=%v", len(streamed), res.Rec)
	}
	for name, field := range sampleSeries {
		series := res.Rec.Series(name)
		if series == nil {
			t.Fatalf("recorded trace missing series %q", name)
		}
		if series.Len() != len(streamed) {
			t.Fatalf("series %q has %d rows, streamed %d samples", name, series.Len(), len(streamed))
		}
		for i, s := range streamed {
			if series.Vals[i] != field(s) {
				t.Fatalf("series %q row %d: recorded %v, streamed %v", name, i, series.Vals[i], field(s))
			}
			if series.Times[i] != s.Time {
				t.Fatalf("series %q row %d: recorded t=%v, streamed t=%v", name, i, series.Times[i], s.Time)
			}
		}
	}
	for i, s := range streamed {
		if s.Step != i {
			t.Fatalf("sample %d carries step %d", i, s.Step)
		}
	}

	// The session's Result is the batch path's Result: the deprecated
	// wrapper runs the identical simulation.
	batch, err := dev.RunScenario(ScenarioRunSpec{
		Scenario: "cold-start", Policy: WithFan, Seed: 11, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.MaxTemp != res.MaxTemp || batch.Energy != res.Energy || batch.ExecTime != res.ExecTime {
		t.Errorf("stream result differs from batch: maxT %g vs %g, energy %g vs %g, exec %g vs %g",
			res.MaxTemp, batch.MaxTemp, res.Energy, batch.Energy, res.ExecTime, batch.ExecTime)
	}
}

// TestObserverCallbackForm pins the WithObserver path: the callback sees
// the same samples the iterator would, without any streaming consumer.
func TestObserverCallbackForm(t *testing.T) {
	dev := NewDevice()
	var observed []Sample
	res, err := dev.runToCompletion(context.Background(), NewSpec(
		WithScenario("cold-start"),
		WithPolicy(WithFan),
		WithSeed(11),
		WithRecord(true),
		WithObserver(func(s Sample) { observed = append(observed, s) }),
	))
	if err != nil {
		t.Fatal(err)
	}
	mt := res.Rec.Series("maxtemp")
	if len(observed) != mt.Len() {
		t.Fatalf("observer saw %d samples, trace has %d rows", len(observed), mt.Len())
	}
	for i, s := range observed {
		if mt.Vals[i] != s.MaxTemp {
			t.Fatalf("observer sample %d: %v, recorded %v", i, s.MaxTemp, mt.Vals[i])
		}
	}
}

// TestCancelledRunIsExactPrefix pins the cancellation contract: a run
// cancelled at step k yields a partial result whose trace is exactly the
// first k+1 rows of the uncancelled run's trace.
func TestCancelledRunIsExactPrefix(t *testing.T) {
	const cancelStep = 50
	dev := NewDevice()
	full, err := dev.RunScenario(ScenarioRunSpec{
		Scenario: "cold-start", Policy: WithFan, Seed: 11, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	session, err := dev.Start(ctx, NewSpec(
		WithScenario("cold-start"),
		WithPolicy(WithFan),
		WithSeed(11),
		WithRecord(true),
		WithObserver(func(s Sample) {
			seen++
			if s.Step == cancelStep {
				cancel() // takes effect at the top of the next interval
			}
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	partial, err := session.Result()
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("cancelled run returned %v, want ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run error %v does not wrap context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled run returned nil partial result")
	}
	if partial.Completed {
		t.Error("cancelled run reports Completed")
	}
	if seen != cancelStep+1 {
		t.Fatalf("observer saw %d samples, want %d", seen, cancelStep+1)
	}
	for name := range sampleSeries {
		got, want := partial.Rec.Series(name), full.Rec.Series(name)
		if got.Len() != cancelStep+1 {
			t.Fatalf("partial series %q has %d rows, want %d", name, got.Len(), cancelStep+1)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Vals[i] != want.Vals[i] || got.Times[i] != want.Times[i] {
				t.Fatalf("partial series %q row %d: (%v,%v) vs full (%v,%v)",
					name, i, got.Times[i], got.Vals[i], want.Times[i], want.Vals[i])
			}
		}
	}
}

// TestCancelledSessionsDoNotLeakGoroutines starts sessions and abandons
// them in every legal way — cancelled before streaming, cancelled while
// streaming, stream broken early — and asserts the run goroutines all
// exit.
func TestCancelledSessionsDoNotLeakGoroutines(t *testing.T) {
	dev := NewDevice()
	before := runtime.NumGoroutine()

	// Cancelled without ever streaming.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	session, err := dev.Start(ctx, NewSpec(WithScenario("cold-start"), WithPolicy(WithFan)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := session.Result(); !errors.Is(err, ErrCancelled) && err != nil {
		t.Fatalf("pre-cancelled session: %v", err)
	}

	// Cancelled mid-stream.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	session, err = dev.Start(ctx2, NewSpec(WithScenario("cold-start"), WithPolicy(WithFan)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range session.Samples() {
		if n++; n == 10 {
			cancel2()
		}
	}
	if _, err := session.Result(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("mid-stream cancel returned %v, want ErrCancelled", err)
	}

	// Stream broken early without cancellation: the run finishes on its
	// own at full speed.
	session, err = dev.Start(context.Background(), NewSpec(WithScenario("cold-start"), WithPolicy(WithFan)))
	if err != nil {
		t.Fatal(err)
	}
	for range session.Samples() {
		break
	}
	if _, err := session.Result(); err != nil {
		t.Fatalf("broken-stream session: %v", err)
	}

	// All run goroutines must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:runtime.Stack(buf, true)])
	}
}

// TestSpecValidation pins the fail-fast contract: invalid specs are
// rejected by Start before any goroutine is spawned, with typed sentinel
// errors where one applies.
func TestSpecValidation(t *testing.T) {
	dev := NewDevice()
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"no workload", NewSpec(WithPolicy(WithFan)), nil},
		{"unknown benchmark", NewSpec(WithBenchmark("doom")), ErrUnknownBenchmark},
		{"unknown scenario", NewSpec(WithScenario("no-such")), ErrUnknownScenario},
	}
	for _, c := range cases {
		if _, err := dev.Start(context.Background(), c.spec); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: error %v does not wrap the sentinel", c.name, err)
		}
	}
	// Platform and model-mismatch sentinels.
	if _, err := NewDeviceFor("no-such-soc"); !errors.Is(err, ErrUnknownPlatform) {
		t.Errorf("NewDeviceFor error %v does not wrap ErrUnknownPlatform", err)
	}
	tablet, err := NewDeviceFor("tablet-8big")
	if err != nil {
		t.Fatal(err)
	}
	// Driving the 8-hotspot tablet with the default platform's 4-state
	// models must fail with the mismatch sentinel.
	if _, err := tablet.runToCompletion(context.Background(), NewSpec(
		WithBenchmark("dijkstra"), WithPolicy(DTPM), WithModels(models(t)))); !errors.Is(err, ErrModelPlatformMismatch) {
		t.Errorf("error %v does not wrap ErrModelPlatformMismatch", err)
	}
}

// TestWithControlPeriod pins the control-period option: samples land on
// the requested grid.
func TestWithControlPeriod(t *testing.T) {
	dev := NewDevice()
	session, err := dev.Start(context.Background(), NewSpec(
		WithScenario("cold-start"),
		WithPolicy(WithoutFan),
		WithControlPeriod(0.5),
	))
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	for s := range session.Samples() {
		times = append(times, s.Time)
	}
	if _, err := session.Result(); err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 || times[1]-times[0] != 0.5 {
		t.Fatalf("control period not applied: %v", times[:min(3, len(times))])
	}
}

// TestSpecWorkloadExclusivity pins the last-one-wins semantics of the
// workload options and the device/platform accessors.
func TestSpecWorkloadExclusivity(t *testing.T) {
	dev := NewDevice()
	// The later workload option replaces the earlier one.
	res, err := dev.runToCompletion(context.Background(), NewSpec(
		WithBenchmark("doom"), // replaced below; must not error
		WithScenario("cold-start"),
		WithPolicy(WithoutFan),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench != "cold-start" {
		t.Errorf("ran %q, want the scenario", res.Bench)
	}
	if dev.Platform() != Platforms()[0] {
		t.Errorf("default device platform %q, registry default %q", dev.Platform(), Platforms()[0])
	}
	if models(t).States() != 4 {
		t.Errorf("default models have %d states, want 4", models(t).States())
	}
}

// TestStreamCampaignFacade pins the streamed campaign: collecting the
// stream and ordering by cell index reproduces RunCampaign's report.
func TestStreamCampaignFacade(t *testing.T) {
	dev := NewDevice()
	grid := CampaignGrid{
		Policies:   []Policy{WithoutFan, Reactive},
		Benchmarks: []string{"dijkstra"},
		Seeds:      []int64{1, 2},
	}
	batch, err := dev.RunCampaign(context.Background(), grid, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := dev.StreamCampaign(context.Background(), grid, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]CellResult, len(batch.Cells))
	n := 0
	for r := range stream {
		got[r.Cell.Index] = r
		n++
	}
	if n != len(batch.Cells) {
		t.Fatalf("stream yielded %d cells, want %d", n, len(batch.Cells))
	}
	for i := range got {
		if got[i].Err != batch.Cells[i].Err || *got[i].Metrics != *batch.Cells[i].Metrics {
			t.Errorf("cell %d: stream %+v vs batch %+v", i, got[i], batch.Cells[i])
		}
	}
}

// Package repro is the public API of the reproduction of "Predictive
// Dynamic Thermal and Power Management for Heterogeneous Mobile Platforms"
// (Singla et al., DATE 2015 / ASU MS thesis 2015).
//
// The library simulates an Odroid-XU+E class big.LITTLE platform (Samsung
// Exynos 5410: 4x Cortex-A15 + 4x Cortex-A7 + GPU + memory), reproduces the
// paper's power/thermal modeling methodology (Chapter 4), its predictive
// DTPM algorithm (Chapter 5), and regenerates every table and figure of its
// evaluation (Chapter 6) plus the power-budget-distribution extension
// (Chapter 7).
//
// Typical use — build one unified Spec from functional options and start a
// context-aware session that streams per-control-interval samples:
//
//	dev := repro.NewDevice()
//	models, err := dev.Characterize(1)        // §4: furnace + PRBS sysid
//	session, err := dev.Start(ctx, repro.NewSpec(
//	    repro.WithBenchmark("templerun"),     // §6: one benchmark run
//	    repro.WithPolicy(repro.DTPM),
//	    repro.WithModels(models),
//	))
//	for s := range session.Samples() {        // live 100 ms telemetry
//	    fmt.Printf("t=%5.1fs %5.1f°C\n", s.Time, s.MaxTemp)
//	}
//	res, err := session.Result()
//	fmt.Println(res.Summary())
//
// The same Spec drives every execution mode: WithScenario selects a
// multi-phase usage scenario, WithTrace replays a recording, and campaigns
// sweep grids of the same knobs. Cancelling the Start context stops the
// run between control intervals with a well-defined partial Result.
//
// To regenerate a paper artifact:
//
//	rep, err := repro.RunExperiment("fig6.9", 1)
//	fmt.Println(rep)
package repro

import (
	"context"
	"fmt"
	"io"
	"iter"
	"strings"

	"repro/internal/budget"
	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/workload"
)

// EngineVersion names the simulation-engine generation this build produces
// bytes for (e.g. "repro-engine/7"). It is the provenance string in every
// result-store key and entry header, the version every daemon API envelope
// carries, and the handshake the daemon rejects mismatched clients on —
// all three consume the one shared constant, so they can never drift.
// Every CLI prints it under -version.
const EngineVersion = version.Engine

// Policy selects the thermal-management configuration of §6.2.
type Policy = sim.Policy

// The four experimental configurations of the paper's evaluation.
const (
	// WithFan is the stock Odroid configuration: default governors plus
	// the 57/63/68 °C fan speed ladder.
	WithFan = sim.PolicyFan
	// WithoutFan disables the fan and runs only the default governors.
	WithoutFan = sim.PolicyNoFan
	// Reactive is the fan-mimicking heuristic: 18%/25% frequency cuts at
	// 63/68 °C.
	Reactive = sim.PolicyReactive
	// DTPM is the paper's predictive algorithm.
	DTPM = sim.PolicyDTPM
)

// Models holds the outcome of the Chapter 4 characterization: the
// identified thermal state-space model and the fitted power model the DTPM
// controller deploys.
type Models struct {
	c *sim.Characterization
}

// Describe renders the identified thermal model and the fitted leakage law
// in human-readable form.
func (m *Models) Describe() string {
	var b strings.Builder
	tm := m.c.Thermal
	fmt.Fprintf(&b, "thermal model T[k+1] = A T[k] + B P[k]  (Ts %.1f s, ambient %.1f C, stable %v)\n",
		tm.Ts, tm.Ambient, tm.Stable())
	fmt.Fprintf(&b, "A =\n%sB =\n%s", tm.A, tm.B)
	lk := m.c.Leakage
	fmt.Fprintf(&b, "big-cluster leakage I(T) = c1 T^2 exp(c2/T) + Igate: c1=%.3g c2=%.0f Igate=%.3g A\n",
		lk.C1, lk.C2, lk.IGate)
	return b.String()
}

// LeakageAt evaluates the fitted big-cluster leakage power (W) at a core
// temperature (°C) and supply voltage (V) — the Figure 4.3 curve.
func (m *Models) LeakageAt(tempC, volt float64) float64 {
	return m.c.Leakage.Power(tempC, volt)
}

// PredictTemperature predicts the hotspot temperatures (°C) n control
// intervals (100 ms each) ahead, from current core temperatures and domain
// powers [big, little, gpu, mem] in watts — Equation 4.5.
//
// The fixed [4] shape fits the default (exynos5410) platform's 4-state
// model only; it panics for models of any other order so a wrong-platform
// mix-up is loud instead of silently mispredicting. Use
// PredictTemperatureN for models identified on other platforms.
func (m *Models) PredictTemperature(tempC [4]float64, powersW [4]float64, n int) [4]float64 {
	out, err := m.PredictTemperatureN(tempC[:], powersW[:], n)
	if err != nil {
		panic("repro: " + err.Error())
	}
	var res [4]float64
	copy(res[:], out)
	return res
}

// PredictTemperatureN is the platform-generic form of PredictTemperature:
// tempC must carry one entry per hotspot node of the platform the models
// were identified on (Models.States()), powersW the four domain powers.
func (m *Models) PredictTemperatureN(tempC, powersW []float64, n int) ([]float64, error) {
	if got, want := len(tempC), m.c.Thermal.States(); got != want {
		return nil, fmt.Errorf("model has %d hotspot states, got %d temperatures (models identified on a different platform?)", want, got)
	}
	return m.c.Thermal.PredictConst(tempC, powersW, n), nil
}

// States returns the identified thermal model's order: one state per
// hotspot node of the platform the models were characterized on.
func (m *Models) States() int { return m.c.Thermal.States() }

// Device is a simulated mobile platform (the default is the paper's
// Odroid-XU+E board; NewDeviceFor builds any registered platform).
type Device struct {
	r *sim.Runner
}

// NewDevice returns the default calibrated device (exynos5410).
func NewDevice() *Device {
	return &Device{r: sim.NewRunner()}
}

// NewDeviceFor returns a simulated device for a registered platform
// profile; see Platforms() for the names. Every layer of the simulator —
// ground-truth power, RC thermal network, sensors, kernel, governors, and
// the DTPM controller — sizes itself from the profile's descriptor.
func NewDeviceFor(name string) (*Device, error) {
	d, err := platform.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Device{r: sim.NewRunnerFor(d)}, nil
}

// Platform returns the name of the profile this device simulates.
func (d *Device) Platform() string {
	if d.r.Desc != nil {
		return d.r.Desc.Name
	}
	return platform.DefaultName
}

// Platforms returns the registered platform profile names (default
// platform first). These are valid for NewDeviceFor and for the campaign
// Platforms sweep axis.
func Platforms() []string { return platform.Names() }

// Characterize runs the complete Chapter 4 modeling methodology against
// the device: the temperature-furnace leakage characterization (§4.1.1)
// and the per-resource PRBS thermal system identification (§4.2.1). The
// models come from noisy sensor data, exactly as on hardware.
func (d *Device) Characterize(seed int64) (*Models, error) {
	return d.CharacterizeContext(context.Background(), seed)
}

// CharacterizeContext is Characterize with cancellation: the context
// aborts the modeling flow between its stages (furnace sweeps and PRBS
// identification experiments).
func (d *Device) CharacterizeContext(ctx context.Context, seed int64) (*Models, error) {
	ch, err := d.r.Characterize(ctx, seed)
	if err != nil {
		return nil, err
	}
	return &Models{c: ch}, nil
}

// RunSpec describes one benchmark run.
//
// Deprecated: RunSpec is the pre-streaming batch spec, kept so existing
// callers keep compiling. New code builds the unified Spec with NewSpec
// (WithBenchmark, WithPolicy, WithModels, ...) and runs it with
// Device.Start — docs/api.md has the field-by-field migration table.
type RunSpec struct {
	// Benchmark is a Table 6.4 name; see Benchmarks().
	Benchmark string
	// Policy is the thermal-management configuration.
	Policy Policy
	// Models is required for the DTPM policy (and enables the §6.3.1
	// prediction-accuracy accounting under any policy).
	Models *Models
	// Seed controls sensor noise and the background load (default 0).
	Seed int64
	// TMax overrides the 63 °C constraint (0 = paper default).
	TMax float64
	// Governor overrides the default cpufreq governor ("" = ondemand;
	// also: interactive, performance, powersave).
	Governor string
	// Record retains full time traces in Result.Trace.
	Record bool
}

// Result is the outcome of one benchmark run.
type Result struct {
	*sim.Result
}

// Summary renders the §6 metrics in one line.
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"%s under %s: exec=%.1fs power=%.2fW energy=%.0fJ maxT=%.1fC avgT=%.1fC over63=%.1fs predErr=%.2f%%",
		r.Bench, r.Policy, r.ExecTime, r.AvgPower, r.Energy, r.MaxTemp, r.AvgTemp, r.OverTMax, r.PredMeanPct)
}

// Run executes one benchmark under one policy to completion. It is a thin
// wrapper over Start with a background context — same simulation, same
// Result, byte-identical traces.
func (d *Device) Run(spec RunSpec) (*Result, error) {
	if spec.Benchmark == "" {
		// Preserve the legacy error (and its ErrUnknownBenchmark sentinel)
		// for an empty name instead of the unified spec's no-workload
		// message, which talks about options this struct doesn't have.
		_, err := workload.ByName(spec.Benchmark)
		return nil, err
	}
	return d.runToCompletion(context.Background(), spec.unified())
}

// unified converts the deprecated batch spec to the unified Spec.
func (spec RunSpec) unified() Spec {
	return NewSpec(
		WithBenchmark(spec.Benchmark),
		WithPolicy(spec.Policy),
		WithModels(spec.Models),
		WithSeed(spec.Seed),
		WithTMax(spec.TMax),
		WithGovernor(spec.Governor),
		WithRecord(spec.Record),
	)
}

// runToCompletion is the shared batch path: Start, then block on Result.
func (d *Device) runToCompletion(ctx context.Context, spec Spec) (*Result, error) {
	session, err := d.Start(ctx, spec)
	if err != nil {
		return nil, err
	}
	return session.Result()
}

// CampaignGrid declares a simulation campaign as the cartesian product of
// {policy × workload × platform × governor × seed × tmax} axes, where the
// workload axis is either Table 6.4 benchmarks or named scenarios and the
// platform axis names registered profiles (see Platforms()); empty axes
// default to the paper's configuration. See the campaign package for the
// semantics.
type CampaignGrid = campaign.Grid

// CampaignReport is a completed campaign: per-cell aggregate metrics (or a
// collected error) in deterministic cell order, exportable as JSON or CSV.
type CampaignReport = campaign.Report

// CellResult is the outcome of one campaign cell, yielded live by
// StreamCampaign and collected into CampaignReport.
type CellResult = campaign.CellResult

// RunCampaign sweeps the grid across a worker pool (workers <= 0 means
// GOMAXPROCS). Results are bit-identical at any parallelism level: each
// cell derives its RNG stream from baseSeed and its own coordinates alone.
// Cell failures are collected in the report, never aborting the sweep. On
// cancellation the partial report (completed cells intact, the rest marked
// cancelled) comes back with an error wrapping ErrCancelled.
func (d *Device) RunCampaign(ctx context.Context, grid CampaignGrid, models *Models, workers int, baseSeed int64) (*CampaignReport, error) {
	return d.campaignEngine(models, workers, baseSeed).RunContext(ctx, grid)
}

// StreamCampaign sweeps the grid like RunCampaign but returns an iterator
// that yields each CellResult as its worker finishes (completion order) —
// live progress over a long sweep. Collecting the stream and sorting by
// Cell.Index recovers exactly RunCampaign's deterministic report.
// Cancelling the context stops new cells, cancels in-flight ones, and
// drains the pool cleanly; breaking out of the loop behaves the same.
func (d *Device) StreamCampaign(ctx context.Context, grid CampaignGrid, models *Models, workers int, baseSeed int64) (iter.Seq[CellResult], error) {
	return d.campaignEngine(models, workers, baseSeed).Stream(ctx, grid)
}

func (d *Device) campaignEngine(models *Models, workers int, baseSeed int64) *campaign.Engine {
	eng := &campaign.Engine{Workers: workers, Runner: d.r, BaseSeed: baseSeed}
	if models != nil {
		eng.Models = models.c
	}
	return eng
}

// Compare runs the spec's workload under every policy — overriding only
// the spec's policy field per run — and reports each result in the §6.2
// configuration order. Because the whole unified spec carries over, every
// knob (TMax, Governor, Record, seed, control period, even a scenario or
// trace workload) propagates to all four runs; earlier versions silently
// dropped everything but the benchmark name, models, and seed.
func (d *Device) Compare(ctx context.Context, spec Spec) ([]*Result, error) {
	out := make([]*Result, 0, 4)
	for _, pol := range []Policy{WithFan, WithoutFan, Reactive, DTPM} {
		res, err := d.runToCompletion(ctx, spec.withPolicyOverride(pol))
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ScenarioSpec re-exports the declarative scenario model: timed phases
// that switch workloads, idle gaps, ambient profiles, governor swaps, and
// thermal-soak preludes, compiled into the simulation loop.
type ScenarioSpec = scenario.Spec

// ScenarioPhase re-exports one timed segment of a scenario.
type ScenarioPhase = scenario.Phase

// Scenarios returns the named library scenario names.
func Scenarios() []string { return scenario.Names() }

// ScenarioByName returns a library scenario's declarative spec.
func ScenarioByName(name string) (ScenarioSpec, error) { return scenario.ByName(name) }

// ScenarioRunSpec describes one scenario run.
//
// Deprecated: ScenarioRunSpec is the pre-streaming batch spec, kept so
// existing callers keep compiling. New code builds the unified Spec with
// NewSpec (WithScenario or WithScenarioSpec, WithPolicy, ...) and runs it
// with Device.Start — docs/api.md has the field-by-field migration table.
type ScenarioRunSpec struct {
	// Scenario is a library scenario name (see Scenarios()); ignored when
	// Spec is set.
	Scenario string
	// Spec is a custom declarative scenario (takes precedence).
	Spec *ScenarioSpec
	// Policy is the thermal-management configuration.
	Policy Policy
	// Models is required for the DTPM policy.
	Models *Models
	// Seed controls sensor noise and the background load; the scenario's
	// own Seed field fixes the workload demand, so replicate seeds vary
	// the noise around an identical scenario.
	Seed int64
	// TMax overrides the 63 °C constraint (0 = paper default).
	TMax float64
	// Governor sets the initial cpufreq governor ("" = ondemand); phases
	// may swap it mid-run.
	Governor string
	// Record retains full time traces, including the scripted input
	// series that make the trace replayable (see ReplayTrace).
	Record bool
}

// RunScenario executes one multi-phase scenario to completion. The spec is
// validated against the device's platform profile (thread counts the
// platform cannot schedule are rejected), like the CLI and campaign paths.
// It is a thin wrapper over Start with a background context.
func (d *Device) RunScenario(spec ScenarioRunSpec) (*Result, error) {
	if spec.Spec == nil && spec.Scenario == "" {
		// Preserve the legacy error (and its ErrUnknownScenario sentinel)
		// for an empty name, as in Run.
		_, err := scenario.ByName(spec.Scenario)
		return nil, err
	}
	wl := WithScenario(spec.Scenario)
	if spec.Spec != nil {
		wl = WithScenarioSpec(spec.Spec)
	}
	return d.runToCompletion(context.Background(), NewSpec(
		wl,
		WithPolicy(spec.Policy),
		WithModels(spec.Models),
		WithSeed(spec.Seed),
		WithTMax(spec.TMax),
		WithGovernor(spec.Governor),
		WithRecord(spec.Record),
	))
}

// TraceDiff re-exports the sample-by-sample trace comparison report.
type TraceDiff = trace.DiffReport

// ReadTrace parses a trace CSV — written by Result.Rec.WriteCSV or
// `cmd/scenario record` — back into a recorder ReplayTrace accepts, so the
// record-to-file / replay-later workflow works outside this module too.
func ReadTrace(r io.Reader) (*trace.Recorder, error) { return trace.ReadCSV(r) }

// ReplayTrace re-feeds a recorded scenario trace as the workload demand
// source (zero-order hold over the recorded input series), runs a fresh
// simulation under the same policy/seed/constraint, and returns the fresh
// result plus the sample-by-sample diff against the recording. With the
// parameters of the original run, the diff reports zero mismatches — any
// drift means the sim/thermal/dtpm stack changed behaviour.
//
// The trace supplies the workload and the control period, so only the
// spec's Policy, Models, Seed, TMax, and Governor fields apply here;
// Scenario and Spec are ignored and the fresh run always records. It is a
// thin wrapper over Start with a background context (WithTrace is the
// streaming-capable form).
func (d *Device) ReplayTrace(rec *trace.Recorder, spec ScenarioRunSpec) (*Result, *TraceDiff, error) {
	res, err := d.runToCompletion(context.Background(), NewSpec(
		WithTrace(rec),
		WithPolicy(spec.Policy),
		WithModels(spec.Models),
		WithSeed(spec.Seed),
		WithTMax(spec.TMax),
		WithGovernor(spec.Governor),
	))
	if err != nil {
		return nil, nil, err
	}
	return res, trace.DiffRecorders(rec.Materialize(), res.Rec.Materialize(), 0), nil
}

// Benchmarks returns the Table 6.4 benchmark names.
func Benchmarks() []string { return workload.Names() }

// BenchmarksByClass returns benchmark names in a power class:
// "low", "medium", or "high".
func BenchmarksByClass(class string) ([]string, error) {
	switch strings.ToLower(class) {
	case "low":
		return workload.ByClass(workload.Low), nil
	case "medium":
		return workload.ByClass(workload.Medium), nil
	case "high":
		return workload.ByClass(workload.High), nil
	}
	return nil, fmt.Errorf("repro: unknown class %q (low, medium, high)", class)
}

// ExperimentIDs lists the regenerable paper artifacts (tables and figures).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact by ID ("fig6.9", "tab6.4",
// ...) and returns its rendered report. The seed fixes all stochastic
// parts, so reports regenerate identically.
func RunExperiment(id string, seed int64) (string, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return "", err
	}
	ectx, err := experiments.NewContext(context.Background(), seed)
	if err != nil {
		return "", err
	}
	rep, err := e.Run(ectx)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// RunAllExperiments regenerates every artifact, sharing one device and
// characterization, and returns the concatenated reports in paper order.
func RunAllExperiments(seed int64) (string, error) {
	ectx, err := experiments.NewContext(context.Background(), seed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, e := range experiments.All() {
		rep, err := e.Run(ectx)
		if err != nil {
			return "", fmt.Errorf("%s: %w", e.ID, err)
		}
		b.WriteString(rep.String())
		b.WriteString("\n\n")
	}
	return b.String(), nil
}

// ErrBudgetInfeasible reports that even the all-minimum-frequency
// configuration exceeds the requested power budget.
var ErrBudgetInfeasible = budget.ErrInfeasible

// BudgetComponent re-exports the Chapter 7 component model.
type BudgetComponent = budget.Component

// BudgetSolution re-exports the Chapter 7 solver outcome.
type BudgetSolution = budget.Solution

// DefaultBudgetComponents returns the Figure 7.1 decomposition (big CPU
// cluster, little CPU cluster, GPU).
func DefaultBudgetComponents() []BudgetComponent { return budget.DefaultComponents() }

// DistributeBudget runs the paper's greedy marginal-cost heuristic
// (Eq. 7.3) to pick one frequency per component under the power budget.
func DistributeBudget(comps []BudgetComponent, pBudget float64) (*BudgetSolution, error) {
	return budget.Greedy(comps, pBudget)
}

// DistributeBudgetOptimal runs the exact branch-and-bound reference solver
// (Eq. 7.1/7.2).
func DistributeBudgetOptimal(comps []BudgetComponent, pBudget float64) (*BudgetSolution, error) {
	return budget.BranchAndBound(comps, pBudget)
}

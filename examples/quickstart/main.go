// Quickstart: characterize the simulated big.LITTLE device, then run the
// Templerun game under the paper's predictive DTPM algorithm and under the
// stock fan-cooled configuration, and compare.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dev := repro.NewDevice()

	// Chapter 4: build the power and thermal models from (simulated)
	// measurements — furnace leakage sweep + PRBS system identification.
	fmt.Println("characterizing device...")
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	// Chapter 6: run the benchmark under the stock configuration (fan) and
	// under the proposed DTPM algorithm (no fan needed).
	for _, policy := range []repro.Policy{repro.WithFan, repro.DTPM} {
		res, err := dev.Run(repro.RunSpec{
			Benchmark: "templerun",
			Policy:    policy,
			Models:    models,
			Seed:      1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())
	}
}

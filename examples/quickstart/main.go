// Quickstart: characterize the simulated big.LITTLE device, then run the
// Templerun game under the paper's predictive DTPM algorithm and under the
// stock fan-cooled configuration, and compare. The DTPM run uses the
// streaming session API: samples arrive live every simulated 100 ms while
// the run executes, and the session ends in the same Result a batch run
// produces.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	dev := repro.NewDevice()

	// Chapter 4: build the power and thermal models from (simulated)
	// measurements — furnace leakage sweep + PRBS system identification.
	fmt.Println("characterizing device...")
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	// Chapter 6: run the benchmark under the stock configuration (fan) and
	// under the proposed DTPM algorithm (no fan needed). One unified Spec
	// describes a run; Start streams it, Result collects it.
	for _, policy := range []repro.Policy{repro.WithFan, repro.DTPM} {
		session, err := dev.Start(context.Background(), repro.NewSpec(
			repro.WithBenchmark("templerun"),
			repro.WithPolicy(policy),
			repro.WithModels(models),
			repro.WithSeed(1),
		))
		if err != nil {
			log.Fatal(err)
		}
		// Observe the live 100 ms telemetry loop the paper's controller
		// acts on (print once per simulated 20 s to keep the output short).
		for s := range session.Samples() {
			if s.Step%200 == 0 {
				fmt.Printf("  t=%5.1fs  %5.1f°C  %4.2f GHz  %5.2f W\n",
					s.Time, s.MaxTemp, s.FreqGHz, s.Power)
			}
		}
		res, err := session.Result()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())
	}
}

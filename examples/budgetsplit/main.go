// Budgetsplit demonstrates the Chapter 7 extension: distributing a dynamic
// power budget across the heterogeneous components (big CPU cluster, little
// CPU cluster, GPU) to minimize execution time (Eq. 7.1) under the power
// constraint (Eq. 7.2), with the paper's greedy marginal-cost heuristic
// (Eq. 7.3) checked against the exact branch-and-bound optimum.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro"
)

func main() {
	comps := repro.DefaultBudgetComponents()
	fmt.Println("components (Figure 7.1):")
	for _, c := range comps {
		max := c.Freqs[len(c.Freqs)-1]
		fmt.Printf("  %-7s %d steps up to %.0f MHz, up to %.2f W\n",
			c.Name, len(c.Freqs), max.MHz(), c.Power(len(c.Freqs)-1))
	}
	fmt.Println()

	fmt.Printf("%9s  %-26s %-26s %s\n", "budget(W)", "greedy (Eq. 7.3)", "optimal (B&B)", "gap")
	for _, budget := range []float64{1.5, 2.5, 4.0, 6.0, 8.0} {
		g, err := repro.DistributeBudget(comps, budget)
		if errors.Is(err, repro.ErrBudgetInfeasible) {
			fmt.Printf("%9.1f  infeasible even at minimum frequencies\n", budget)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		opt, err := repro.DistributeBudgetOptimal(comps, budget)
		if err != nil {
			log.Fatal(err)
		}
		gap := 100 * (g.Cost - opt.Cost) / opt.Cost
		fmt.Printf("%9.1f  %-26s %-26s %.1f%%\n",
			budget, assignment(g), assignment(opt), gap)
	}
}

func assignment(s *repro.BudgetSolution) string {
	return fmt.Sprintf("%4.0f/%4.0f/%3.0f MHz J=%.3f",
		s.Freqs[0].MHz(), s.Freqs[1].MHz(), s.Freqs[2].MHz(), s.Cost)
}

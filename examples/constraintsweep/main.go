// Constraintsweep runs the same hot benchmark under DTPM at several
// temperature constraints, showing the regulation/performance trade-off:
// the trigger value "can be varied for different systems while the
// algorithm remains the same" (§5.1).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dev := repro.NewDevice()
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	base, err := dev.Run(repro.RunSpec{Benchmark: "matrixmult", Policy: repro.WithFan, Models: models, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (with fan): exec=%.1fs power=%.2fW maxT=%.1fC\n\n", base.ExecTime, base.AvgPower, base.MaxTemp)

	fmt.Printf("%8s %8s %9s %8s %9s %10s\n", "TMax(C)", "exec(s)", "power(W)", "maxT(C)", ">TMax(s)", "perf loss")
	for _, tmax := range []float64{55, 58, 61, 63, 66, 70} {
		res, err := dev.Run(repro.RunSpec{
			Benchmark: "matrixmult", Policy: repro.DTPM,
			Models: models, TMax: tmax, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		loss := 100 * (res.ExecTime - base.ExecTime) / base.ExecTime
		fmt.Printf("%8.0f %8.1f %9.2f %8.1f %9.1f %9.1f%%\n",
			tmax, res.ExecTime, res.AvgPower, res.MaxTemp, res.OverTMax, loss)
	}
	fmt.Println("\nTighter constraints trade execution time for temperature;")
	fmt.Println("the algorithm and models are unchanged across the sweep.")
}

// Campaignsweep fans a robustness grid out across every CPU core: three
// policies × two hot benchmarks × three replicate seeds, DTPM additionally
// swept over three constraints. It demonstrates the concurrent campaign
// engine — the sweep saturates GOMAXPROCS workers yet produces exactly the
// same report a sequential run would.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dev := repro.NewDevice()
	fmt.Fprintln(os.Stderr, "characterizing device...")
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	// Robustness of the policy comparison across sensor-noise seeds.
	grid := repro.CampaignGrid{
		Policies:   []repro.Policy{repro.WithFan, repro.Reactive, repro.DTPM},
		Benchmarks: []string{"matrixmult", "templerun"},
		Seeds:      []int64{1, 2, 3},
	}
	fmt.Fprintf(os.Stderr, "sweeping %d cells...\n", grid.Size())
	rep, err := dev.RunCampaign(grid, models, 0 /* GOMAXPROCS */, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	// DTPM constraint sweep on the stress benchmark, three seeds each.
	grid = repro.CampaignGrid{
		Policies:   []repro.Policy{repro.DTPM},
		Benchmarks: []string{"matrixmult"},
		Seeds:      []int64{1, 2, 3},
		TMax:       []float64{58, 63, 68},
	}
	fmt.Fprintf(os.Stderr, "sweeping %d constraint cells...\n", grid.Size())
	rep, err = dev.RunCampaign(grid, models, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Println("\nSame grid + same base seed => byte-identical report at any worker count.")
}

// Campaignsweep fans a robustness grid out across every CPU core: three
// policies × two hot benchmarks × three replicate seeds, DTPM additionally
// swept over three constraints. The first sweep is consumed as a live
// stream — cells arrive the moment their worker finishes — while the
// second uses the collected batch form; both produce exactly the report a
// sequential run would.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"repro"
)

func main() {
	ctx := context.Background()
	dev := repro.NewDevice()
	fmt.Fprintln(os.Stderr, "characterizing device...")
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	// Robustness of the policy comparison across sensor-noise seeds,
	// streamed: each cell is reported as it completes (completion order),
	// then sorted back into the deterministic cell-index order.
	grid := repro.CampaignGrid{
		Policies:   []repro.Policy{repro.WithFan, repro.Reactive, repro.DTPM},
		Benchmarks: []string{"matrixmult", "templerun"},
		Seeds:      []int64{1, 2, 3},
	}
	fmt.Fprintf(os.Stderr, "streaming %d cells...\n", grid.Size())
	stream, err := dev.StreamCampaign(ctx, grid, models, 0 /* GOMAXPROCS */, 1)
	if err != nil {
		log.Fatal(err)
	}
	var cells []repro.CellResult
	for r := range stream {
		fmt.Fprintf(os.Stderr, "  [%d/%d] %s done\n", len(cells)+1, grid.Size(), r.Cell)
		cells = append(cells, r)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Cell.Index < cells[j].Cell.Index })
	rep := &repro.CampaignReport{BaseSeed: 1, Cells: cells}
	fmt.Print(rep.Summary())

	// DTPM constraint sweep on the stress benchmark, three seeds each —
	// the batch form collects the same deterministic report directly.
	grid = repro.CampaignGrid{
		Policies:   []repro.Policy{repro.DTPM},
		Benchmarks: []string{"matrixmult"},
		Seeds:      []int64{1, 2, 3},
		TMax:       []float64{58, 63, 68},
	}
	fmt.Fprintf(os.Stderr, "sweeping %d constraint cells...\n", grid.Size())
	rep, err = dev.RunCampaign(ctx, grid, models, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Summary())
	fmt.Println("\nSame grid + same base seed => byte-identical report at any worker count.")
}

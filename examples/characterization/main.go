// Characterization walks the Chapter 4 modeling workflow end to end: fit
// the leakage law in the temperature furnace, identify the thermal
// state-space model from PRBS experiments, inspect both, and use the model
// for a multi-step temperature prediction (Equation 4.5).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	dev := repro.NewDevice()
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	// Inspect the fitted models.
	fmt.Println("== Identified models ==")
	fmt.Print(models.Describe())

	// The Figure 4.3 leakage curve: exponential growth with temperature.
	fmt.Println("\n== Fitted leakage vs temperature (1.25 V) ==")
	for temp := 40.0; temp <= 80; temp += 10 {
		fmt.Printf("  %2.0f C -> %.3f W\n", temp, models.LeakageAt(temp, 1.25))
	}

	// Equation 4.5: predict the hotspots 1 s (10 intervals) ahead under a
	// hypothetical power assignment — this is exactly the computation the
	// DTPM controller runs before affirming a governor decision.
	temps := [4]float64{55, 54.5, 54.8, 55.2}
	powers := [4]float64{3.2, 0.05, 0.1, 0.5} // big, little, gpu, mem (W)
	pred := models.PredictTemperature(temps, powers, 10)
	fmt.Println("\n== 1 s temperature prediction under 3.2 W big-cluster load ==")
	fmt.Printf("  now:  %.1f %.1f %.1f %.1f C\n", temps[0], temps[1], temps[2], temps[3])
	fmt.Printf("  +1 s: %.1f %.1f %.1f %.1f C\n", pred[0], pred[1], pred[2], pred[3])

	// Validate the prediction accuracy inside a real benchmark run (the
	// §6.3.1 accounting): every interval the hotspot temperature is
	// predicted 1 s ahead and compared against the later measurement.
	res, err := dev.Run(repro.RunSpec{Benchmark: "blowfish", Policy: repro.WithoutFan, Models: models})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== In-loop validation on blowfish ==\n")
	fmt.Printf("  mean error %.2f%%  max error %.2f%%  max abs %.2f C\n",
		res.PredMeanPct, res.PredMaxPct, res.PredMaxAbsC)
}

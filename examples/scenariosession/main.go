// Scenariosession drives the scenario engine end to end: run a library
// scenario (a full gaming session with menus, gameplay, and a pause),
// record its trace, replay the trace as the workload demand source, and
// verify the replay reproduces the original run sample for sample. It then
// sweeps every library scenario across two policies with the campaign
// engine.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dev := repro.NewDevice()

	// Run and record one named scenario.
	res, err := dev.RunScenario(repro.ScenarioRunSpec{
		Scenario: "gaming-session",
		Policy:   repro.WithFan,
		Seed:     1,
		Record:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Replay the recorded trace: zero mismatches expected.
	_, diff, err := dev.ReplayTrace(res.Rec, repro.ScenarioRunSpec{
		Policy: repro.WithFan,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay:", diff)
	if !diff.Clean() {
		log.Fatal("replay diverged from the recording")
	}

	// Sweep the whole scenario library across two policies.
	grid := repro.CampaignGrid{
		Policies:  []repro.Policy{repro.WithFan, repro.Reactive},
		Scenarios: repro.Scenarios(),
	}
	fmt.Fprintf(os.Stderr, "sweeping %d scenario cells...\n", grid.Size())
	rep, err := dev.RunCampaign(grid, nil, 0 /* GOMAXPROCS */, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
}

// Scenariosession drives the streaming session API end to end: run a
// library scenario (a full gaming session with menus, gameplay, and a
// pause) while observing its samples live, record its trace, verify the
// streamed samples are bit-identical to the recorded rows, replay the
// trace as the workload demand source, and verify the replay reproduces
// the original run sample for sample. It then cancels a second session
// mid-run to show the well-defined partial result, and sweeps every
// library scenario across two policies with the campaign engine.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	ctx := context.Background()
	dev := repro.NewDevice()

	// Run one named scenario as a streaming session, recording the trace.
	session, err := dev.Start(ctx, repro.NewSpec(
		repro.WithScenario("gaming-session"),
		repro.WithPolicy(repro.WithFan),
		repro.WithSeed(1),
		repro.WithRecord(true),
	))
	if err != nil {
		log.Fatal(err)
	}
	var streamed []repro.Sample
	for s := range session.Samples() {
		streamed = append(streamed, s)
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary())

	// Streamed samples and recorded trace rows are the same values.
	maxtemp := res.Rec.Series("maxtemp")
	if maxtemp.Len() != len(streamed) {
		log.Fatalf("streamed %d samples, recorded %d rows", len(streamed), maxtemp.Len())
	}
	for i, s := range streamed {
		if maxtemp.Vals[i] != s.MaxTemp {
			log.Fatalf("sample %d: streamed %v, recorded %v", i, s.MaxTemp, maxtemp.Vals[i])
		}
	}
	fmt.Printf("streamed %d samples, bit-identical to the recorded trace\n", len(streamed))

	// Replay the recorded trace: zero mismatches expected.
	_, diff, err := dev.ReplayTrace(res.Rec, repro.ScenarioRunSpec{
		Policy: repro.WithFan,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay:", diff)
	if !diff.Clean() {
		log.Fatal("replay diverged from the recording")
	}

	// Cancel a session mid-run: the partial result covers exactly the
	// intervals that completed before the cancellation.
	cctx, cancel := context.WithCancel(ctx)
	session, err = dev.Start(cctx, repro.NewSpec(
		repro.WithScenario("gaming-session"),
		repro.WithPolicy(repro.WithFan),
		repro.WithSeed(1),
	))
	if err != nil {
		log.Fatal(err)
	}
	seen := 0
	for range session.Samples() {
		if seen++; seen == 100 { // cancel after 10 simulated seconds
			cancel()
		}
	}
	partial, err := session.Result()
	if !errors.Is(err, repro.ErrCancelled) {
		log.Fatalf("cancelled session returned %v, want ErrCancelled", err)
	}
	fmt.Printf("cancelled after %d samples: partial result covers %.1fs\n", seen, partial.ExecTime)
	cancel()

	// Sweep the whole scenario library across two policies.
	grid := repro.CampaignGrid{
		Policies:  []repro.Policy{repro.WithFan, repro.Reactive},
		Scenarios: repro.Scenarios(),
	}
	fmt.Fprintf(os.Stderr, "sweeping %d scenario cells...\n", grid.Size())
	rep, err := dev.RunCampaign(ctx, grid, nil, 0 /* GOMAXPROCS */, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
}

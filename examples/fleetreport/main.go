// Fleetreport simulates a small population of virtual devices — a
// platform mix across three SoCs, a scenario mix of daily usage patterns,
// and per-device ambient/workload perturbations — streams per-device
// progress as cells complete, and prints the aggregate per-platform /
// per-scenario report: skin-temperature percentiles, throttle time,
// energy, and performance loss across the population. The same spec and
// seed produce byte-identical reports at any worker count, and any single
// device can be re-run standalone with ReplayFleetCell.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	dev := repro.NewDevice()
	spec := repro.FleetSpec{
		Name:           "demo-fleet",
		N:              32,
		Policy:         "dtpm",
		ControlPeriodS: 0.5, // coarse ticks keep the demo quick
		Platforms: []repro.FleetWeight{
			{Name: "exynos5410", Weight: 2},
			{Name: "fanless-phone", Weight: 1},
			{Name: "tablet-8big", Weight: 1},
		},
		Scenarios: []repro.FleetWeight{
			{Name: "cold-start", Weight: 3},
			{Name: "bursty-interactive", Weight: 2},
			{Name: "soak-then-sprint", Weight: 1},
		},
		AmbientJitterC: 10, // cool offices to hot cars
	}

	fmt.Fprintf(os.Stderr, "simulating %d devices (characterizes each platform once)...\n", spec.N)
	stream, collect, err := dev.StreamFleet(context.Background(), spec, nil, 0 /* GOMAXPROCS */, 1)
	if err != nil {
		log.Fatal(err)
	}
	worst, worstT := 0, 0.0
	for p := range stream {
		if p.Metrics == nil { // failed cell: collected in the report
			fmt.Fprintf(os.Stderr, "  [%2d/%d] %s FAILED: %s\n", p.Done, p.Total, p.Cell, p.Err)
			continue
		}
		fmt.Fprintf(os.Stderr, "  [%2d/%d] %s maxT=%.1fC energy=%.0fJ\n",
			p.Done, p.Total, p.Cell, p.Metrics.MaxCoreC, p.Metrics.EnergyJ)
		if p.Metrics.MaxCoreC > worstT {
			worst, worstT = p.Cell.Index, p.Metrics.MaxCoreC
		}
	}
	rep, err := collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())

	// Every aggregate number is backed by a replayable device: re-run the
	// hottest cell standalone with full trace recording and show it
	// reproduces the exact run the fleet aggregated.
	res, cfg, err := dev.ReplayFleetCell(context.Background(), spec, nil, 1, worst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhottest device replayed standalone: %s -> maxT=%.1fC over %d trace series\n",
		cfg, res.MaxTemp, len(res.Rec.Names()))
}

// Gaming reproduces the paper's motivating scenario: a GPU-heavy game
// (with the matrix-multiplication background load of §6.1.3) running on a
// phone without a fan. The stock fan configuration, the no-fan default,
// the reactive heuristic, and the proposed DTPM algorithm are compared on
// temperature regulation, platform power, and execution time.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	dev := repro.NewDevice()
	models, err := dev.Characterize(1)
	if err != nil {
		log.Fatal(err)
	}

	for _, game := range []string{"templerun", "angrybirds"} {
		fmt.Printf("== %s ==\n", game)
		// Compare overrides only the policy per run, so every other knob
		// of the unified spec carries into all four configurations.
		results, err := dev.Compare(context.Background(), repro.NewSpec(
			repro.WithBenchmark(game),
			repro.WithModels(models),
			repro.WithSeed(1),
		))
		if err != nil {
			log.Fatal(err)
		}
		base := results[0] // with-fan default
		fmt.Printf("%-12s %8s %9s %8s %9s %10s\n",
			"policy", "exec(s)", "power(W)", "maxT(C)", ">63C(s)", "vs default")
		for _, res := range results {
			saving := 100 * (base.AvgPower - res.AvgPower) / base.AvgPower
			fmt.Printf("%-12s %8.1f %9.2f %8.1f %9.1f %9.1f%%\n",
				res.Policy, res.ExecTime, res.AvgPower, res.MaxTemp, res.OverTMax, saving)
		}
		fmt.Println()
	}

	fmt.Println("DTPM holds the 63 C constraint with no fan, at lower platform power")
	fmt.Println("than the fan-cooled default and a few percent longer execution time.")
}
